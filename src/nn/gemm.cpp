#include "nn/gemm.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "runtime/cancel.hpp"
#include "runtime/parallel_for.hpp"

namespace ffsva::nn {

void im2col(const Tensor& x, int n, int kernel, int stride, int pad,
            int out_h, int out_w, std::vector<float>& columns) {
  const int in_ch = x.c(), h = x.h(), w = x.w();
  const std::size_t rows = static_cast<std::size_t>(in_ch) * kernel * kernel;
  columns.resize(rows * static_cast<std::size_t>(out_h) * out_w);
  const float* xbase =
      x.data() + static_cast<std::size_t>(n) * in_ch * h * w;
  std::size_t row = 0;
  for (int c = 0; c < in_ch; ++c) {
    const float* xc = xbase + static_cast<std::size_t>(c) * h * w;
    for (int ky = 0; ky < kernel; ++ky) {
      for (int kx = 0; kx < kernel; ++kx, ++row) {
        float* dst = columns.data() + row * static_cast<std::size_t>(out_h) * out_w;
        const int xoff = kx - pad;
        // The ox values whose source column ox*stride + xoff is in-image;
        // hoisting the bounds here leaves the per-pixel loop branch-free.
        const int ox0 = xoff < 0 ? (-xoff + stride - 1) / stride : 0;
        const int ox1 =
            xoff >= w ? 0
                      : std::min(out_w, (w - 1 - xoff) / stride + 1);
        for (int oy = 0; oy < out_h; ++oy) {
          float* d = dst + static_cast<std::size_t>(oy) * out_w;
          const int iy = oy * stride + ky - pad;
          if (iy < 0 || iy >= h) {
            std::memset(d, 0, sizeof(float) * static_cast<std::size_t>(out_w));
            continue;
          }
          const float* src = xc + static_cast<std::size_t>(iy) * w + xoff;
          for (int ox = 0; ox < ox0; ++ox) d[ox] = 0.0f;
          if (stride == 1) {
            if (ox1 > ox0) {
              std::memcpy(d + ox0, src + ox0,
                          sizeof(float) * static_cast<std::size_t>(ox1 - ox0));
            }
          } else {
            for (int ox = ox0; ox < ox1; ++ox) d[ox] = src[ox * stride];
          }
          for (int ox = ox1; ox < out_w; ++ox) d[ox] = 0.0f;
        }
      }
    }
  }
}

void gemm_naive(const float* a, const float* b, float* c, int m, int k, int n) {
  std::memset(c, 0, sizeof(float) * static_cast<std::size_t>(m) * n);
  runtime::check_cancel();  // cancellation boundary for thin-shape forwards
  for (int i = 0; i < m; ++i) {
    for (int p = 0; p < k; ++p) {
      const float aip = a[static_cast<std::size_t>(i) * k + p];
      if (aip == 0.0f) continue;  // pruned weights cost nothing
      const float* brow = b + static_cast<std::size_t>(p) * n;
      float* crow = c + static_cast<std::size_t>(i) * n;
      for (int j = 0; j < n; ++j) crow[j] += aip * brow[j];
    }
  }
}

namespace {

// Register micro-tile (MR x NR accumulators: 4x16 floats = 16 AVX2 lanes
// worth, small enough for the compiler to keep in ymm registers) and cache
// blocks: a KC x NR slab of packed B plus an MR x KC slab of packed A fit
// comfortably in L1; a full KC x NC packed B block stays L2-resident.
constexpr int kMR = 4;
constexpr int kNR = 16;
constexpr int kKC = 256;
constexpr int kNC = 1024;
// Below this many multiply-adds the pool dispatch costs more than it buys.
constexpr std::int64_t kParallelMacs = 1 << 17;
// Upper bound on row panels per parallel chunk (an L2-sized stripe); small
// problems shrink the grain so every worker still gets a panel.
constexpr std::int64_t kPanelGrainMax = 16;

/// Pack row panel `ir` of A[.,pc:pc+kc] as consecutive MR-vectors,
/// zero-padded past row m, compacting away k-steps whose whole MR slice is
/// zero (magnitude pruning, nn/compress.hpp, zeroes exact weights).
/// idx[t] records the original k-step of packed step t; returns the number
/// of surviving steps (== kc for a fully dense panel).
int pack_a_panel(const float* a, int lda, int m, int pc, int kc, int ir,
                 float* dst, std::int32_t* idx) {
  const int i0 = ir * kMR;
  const int rows = std::min(kMR, m - i0);
  int steps = 0;
  for (int p = 0; p < kc; ++p) {
    float* d = dst + static_cast<std::size_t>(steps) * kMR;
    bool nonzero = false;
    for (int r = 0; r < rows; ++r) {
      const float v = a[static_cast<std::size_t>(i0 + r) * lda + pc + p];
      nonzero |= (v != 0.0f);
      d[r] = v;
    }
    for (int r = rows; r < kMR; ++r) d[r] = 0.0f;
    idx[steps] = p;
    steps += nonzero ? 1 : 0;
  }
  return steps;
}

/// Pack B[pc:pc+kc, jc:jc+nc] as NR-column panels, zero-padded past n.
void pack_b(const float* b, int ldb, int pc, int kc, int jc, int nc, float* dst) {
  const int panels = (nc + kNR - 1) / kNR;
  for (int jr = 0; jr < panels; ++jr) {
    float* panel = dst + static_cast<std::size_t>(jr) * kc * kNR;
    const int j0 = jc + jr * kNR;
    const int cols = std::min(kNR, jc + nc - j0);
    for (int p = 0; p < kc; ++p) {
      const float* src = b + static_cast<std::size_t>(pc + p) * ldb + j0;
      float* d = panel + static_cast<std::size_t>(p) * kNR;
      int col = 0;
      for (; col < cols; ++col) d[col] = src[col];
      for (; col < kNR; ++col) d[col] = 0.0f;
    }
  }
}

// The accumulator rows are spelled out and the j-loop kept innermost so the
// compiler vectorizes across the NR columns (one 16-lane FMA per row with
// the accumulators living in registers across the whole p-loop) instead of
// interchanging onto the 4-lane row dimension and spilling. Kept
// out-of-line: inlined into the blocked driver the register allocator
// spills the accumulators and throughput collapses several-fold.
__attribute__((noinline))
void micro_dense(const float* __restrict ap, const float* __restrict bp, int kc,
                 float* __restrict acc) {
  static_assert(kMR == 4, "accumulator rows are unrolled by hand");
  float* acc0 = acc;
  float* acc1 = acc + kNR;
  float* acc2 = acc + 2 * kNR;
  float* acc3 = acc + 3 * kNR;
  for (int p = 0; p < kc; ++p) {
    const float* brow = bp + static_cast<std::size_t>(p) * kNR;
    const float a0 = ap[p * kMR + 0];
    const float a1 = ap[p * kMR + 1];
    const float a2 = ap[p * kMR + 2];
    const float a3 = ap[p * kMR + 3];
    for (int j = 0; j < kNR; ++j) {
      const float bj = brow[j];
      acc0[j] += a0 * bj;
      acc1[j] += a1 * bj;
      acc2[j] += a2 * bj;
      acc3[j] += a3 * bj;
    }
  }
}

/// The pruning fast path: identical FMA structure to micro_dense but over
/// the compacted steps of a pruned panel, indirecting into B through the
/// surviving k-step indices — no per-element branch anywhere. Unlike the
/// dense kernel the auto-vectorizer refuses this loop (the indexed B row
/// defeats its dependence analysis), so on GNU-compatible compilers the
/// NR-wide rows are spelled as vector-extension values; acc is overwritten,
/// which the tile driver's memset makes equivalent to accumulation.
#if defined(__GNUC__) || defined(__clang__)
typedef float VecNR __attribute__((vector_size(kNR * sizeof(float))));
__attribute__((noinline))
void micro_indexed(const float* __restrict ap, const float* __restrict bp,
                   const std::int32_t* __restrict idx, int steps,
                   float* __restrict acc) {
  VecNR c0 = {}, c1 = {}, c2 = {}, c3 = {};
  for (int t = 0; t < steps; ++t) {
    VecNR b;
    __builtin_memcpy(&b, bp + static_cast<std::size_t>(idx[t]) * kNR, sizeof(b));
    c0 += ap[t * kMR + 0] * b;
    c1 += ap[t * kMR + 1] * b;
    c2 += ap[t * kMR + 2] * b;
    c3 += ap[t * kMR + 3] * b;
  }
  __builtin_memcpy(acc, &c0, sizeof(c0));
  __builtin_memcpy(acc + kNR, &c1, sizeof(c1));
  __builtin_memcpy(acc + 2 * kNR, &c2, sizeof(c2));
  __builtin_memcpy(acc + 3 * kNR, &c3, sizeof(c3));
}
#else
void micro_indexed(const float* ap, const float* bp, const std::int32_t* idx,
                   int steps, float* acc) {
  for (int t = 0; t < steps; ++t) {
    const float* brow = bp + static_cast<std::size_t>(idx[t]) * kNR;
    for (int r = 0; r < kMR; ++r) {
      const float av = ap[t * kMR + r];
      float* accr = acc + r * kNR;
      for (int j = 0; j < kNR; ++j) accr[j] += av * brow[j];
    }
  }
}
#endif

}  // namespace

void gemm(const float* a, const float* b, float* c, int m, int k, int n,
          GemmScratch& ws) {
  if (m <= 0 || n <= 0) return;

  // Thin shapes: with k below one unrolled stripe or n below two register
  // tiles, packing plus tile padding costs more than the whole product;
  // the streaming kernel (which skips zero weights per element) wins
  // outright there.
  if (k < 16 || n < 2 * kNR) {
    gemm_naive(a, b, c, m, k, n);
    return;
  }

  std::memset(c, 0, sizeof(float) * static_cast<std::size_t>(m) * n);
  if (k <= 0) return;

  const int row_panels = (m + kMR - 1) / kMR;
  const int kc_max = std::min(k, kKC);
  ws.a_pack.resize(static_cast<std::size_t>(row_panels) * kMR * kc_max);
  ws.a_idx.resize(static_cast<std::size_t>(row_panels) * kc_max);
  const bool go_parallel =
      static_cast<std::int64_t>(m) * k * n >= kParallelMacs;

  for (int jc = 0; jc < n; jc += kNC) {
    const int nc = std::min(kNC, n - jc);
    const int col_panels = (nc + kNR - 1) / kNR;
    for (int pc = 0; pc < k; pc += kKC) {
      const int kc = std::min(kKC, k - pc);
      ws.b_pack.resize(static_cast<std::size_t>(col_panels) * kc * kNR);
      pack_b(b, n, pc, kc, jc, nc, ws.b_pack.data());

      // Each chunk packs and multiplies its own disjoint row panels, so
      // every C row is accumulated in one fixed k-order by one worker —
      // bitwise-deterministic for any thread count.
      auto rows_body = [&](std::int64_t ir0, std::int64_t ir1) {
        // Cancellation boundary: one check per row panel (~kMR*kc*nc MACs)
        // keeps a cancelled forward's unwind latency at tile granularity
        // without measurable cost in the dense inner loops.
        alignas(64) float acc[kMR * kNR];
        for (std::int64_t ir = ir0; ir < ir1; ++ir) {
          runtime::check_cancel();
          float* apanel = ws.a_pack.data() + static_cast<std::size_t>(ir) * kMR * kc;
          std::int32_t* aidx = ws.a_idx.data() + static_cast<std::size_t>(ir) * kc;
          const int steps = pack_a_panel(a, k, m, pc, kc, static_cast<int>(ir),
                                         apanel, aidx);
          const int i0 = static_cast<int>(ir) * kMR;
          const int rows = std::min(kMR, m - i0);
          for (int jr = 0; jr < col_panels; ++jr) {
            const float* bpanel =
                ws.b_pack.data() + static_cast<std::size_t>(jr) * kc * kNR;
            std::memset(acc, 0, sizeof(acc));
            if (steps == kc) {
              micro_dense(apanel, bpanel, kc, acc);
            } else {
              micro_indexed(apanel, bpanel, aidx, steps, acc);
            }
            const int j0 = jc + jr * kNR;
            const int cols = std::min(kNR, jc + nc - j0);
            for (int r = 0; r < rows; ++r) {
              float* crow = c + static_cast<std::size_t>(i0 + r) * n + j0;
              const float* accr = acc + r * kNR;
              for (int j = 0; j < cols; ++j) crow[j] += accr[j];
            }
          }
        }
      };
      if (go_parallel) {
        const std::int64_t grain = std::clamp<std::int64_t>(
            row_panels / (2 * runtime::compute_parallelism()), 1, kPanelGrainMax);
        runtime::parallel_for(0, row_panels, grain, rows_body);
      } else {
        rows_body(0, row_panels);
      }
    }
  }
}

void gemm(const float* a, const float* b, float* c, int m, int k, int n) {
  static thread_local GemmScratch ws;
  gemm(a, b, c, m, k, n, ws);
}

void conv2d_im2col_into(const Tensor& x, const Tensor& weight, const Tensor& bias,
                        int stride, int pad, Tensor& y, GemmScratch& ws) {
  if (x.c() != weight.c()) {
    throw std::invalid_argument("conv2d_im2col: channel mismatch");
  }
  const int kernel = weight.h();
  const int out_ch = weight.n();
  const int oh = (x.h() + 2 * pad - kernel) / stride + 1;
  const int ow = (x.w() + 2 * pad - kernel) / stride + 1;
  y.resize(x.n(), out_ch, oh, ow);
  const int k = weight.c() * kernel * kernel;
  const int cols = oh * ow;
  auto run_sample = [&](int n, GemmScratch& lane) {
    runtime::check_cancel();  // cancellation boundary: per conv sample
    im2col(x, n, kernel, stride, pad, oh, ow, lane.columns);
    float* out = y.data() + static_cast<std::size_t>(n) * out_ch * cols;
    gemm(weight.data(), lane.columns.data(), out, out_ch, k, cols, lane);
    for (int oc = 0; oc < out_ch; ++oc) {
      const float b = bias.at(oc, 0, 0, 0);
      float* row = out + static_cast<std::size_t>(oc) * cols;
      for (int j = 0; j < cols; ++j) row[j] += b;
    }
  };
  // Batches fan out across the compute pool, one lane of scratch buffers
  // per sample (samples are independent, so results do not depend on the
  // thread count). Single samples and tiny batches stay serial.
  const std::int64_t total_macs =
      static_cast<std::int64_t>(x.n()) * out_ch * k * cols;
  if (x.n() > 1 && total_macs >= kParallelMacs) {
    if (ws.lanes.size() < static_cast<std::size_t>(x.n())) {
      ws.lanes.resize(static_cast<std::size_t>(x.n()));
    }
    runtime::parallel_for(0, x.n(), 1, [&](std::int64_t b, std::int64_t e) {
      for (std::int64_t n = b; n < e; ++n) {
        run_sample(static_cast<int>(n), ws.lanes[static_cast<std::size_t>(n)]);
      }
    });
  } else {
    for (int n = 0; n < x.n(); ++n) run_sample(n, ws);
  }
}

Tensor conv2d_im2col(const Tensor& x, const Tensor& weight, const Tensor& bias,
                     int stride, int pad) {
  static thread_local GemmScratch ws;
  Tensor y;
  conv2d_im2col_into(x, weight, bias, stride, pad, y, ws);
  return y;
}

}  // namespace ffsva::nn
