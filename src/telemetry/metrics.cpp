// relaxed-ok: see telemetry/metrics.hpp — sharded accumulators whose
// snapshots are approximate-until-quiesce by contract.
#include "telemetry/metrics.hpp"

#include <algorithm>

namespace ffsva::telemetry {

std::uint32_t thread_slot() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

double HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target =
      static_cast<std::uint64_t>(q * static_cast<double>(count - 1));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen > target) {
      return std::clamp(runtime::Histogram::bucket_value(i), min, max);
    }
  }
  return max;
}

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
  if (other.count == 0) return;
  if (count == 0) {
    *this = other;
    return;
  }
  count += other.count;
  sum += other.sum;
  min = std::min(min, other.min);
  max = std::max(max, other.max);
  if (buckets.size() < other.buckets.size()) buckets.resize(other.buckets.size(), 0);
  for (std::size_t i = 0; i < other.buckets.size(); ++i) buckets[i] += other.buckets[i];
}

AtomicHistogram::AtomicHistogram()
    : buckets_(runtime::Histogram::kBuckets) {}

void AtomicHistogram::record(double value) {
  const std::size_t idx =
      std::min(runtime::Histogram::bucket_index(value), buckets_.size() - 1);
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  // min/max via CAS: first sample claims both (count_ still 0 until below).
  if (count_.fetch_add(1, std::memory_order_relaxed) == 0) {
    min_.store(value, std::memory_order_relaxed);
    max_.store(value, std::memory_order_relaxed);
  }
  double cur = min_.load(std::memory_order_relaxed);
  while (value < cur &&
         !min_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (value > cur &&
         !max_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot AtomicHistogram::snapshot() const {
  HistogramSnapshot s;
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  s.min = min_.load(std::memory_order_relaxed);
  s.max = max_.load(std::memory_order_relaxed);
  s.buckets.resize(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return s;
}

std::uint64_t MetricsSnapshot::counter_or(std::string_view name,
                                          std::uint64_t fallback) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return fallback;
}

double MetricsSnapshot::gauge_or(std::string_view name, double fallback) const {
  for (const auto& [n, v] : gauges) {
    if (n == name) return v;
  }
  return fallback;
}

const HistogramSnapshot* MetricsSnapshot::histogram(std::string_view name) const {
  for (const auto& [n, v] : histograms) {
    if (n == name) return &v;
  }
  return nullptr;
}

Counter& Registry::counter(const std::string& name) {
  runtime::MutexLock lk(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name, Gauge::Fn fn) {
  runtime::MutexLock lk(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  if (fn) slot->set_fn(std::move(fn));
  return *slot;
}

AtomicHistogram& Registry::histogram(const std::string& name) {
  runtime::MutexLock lk(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<AtomicHistogram>();
  return *slot;
}

MetricsSnapshot Registry::snapshot() const {
  runtime::MutexLock lk(mu_);
  MetricsSnapshot s;
  s.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) s.counters.emplace_back(name, c->value());
  s.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) s.gauges.emplace_back(name, g->value());
  s.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    s.histograms.emplace_back(name, h->snapshot());
  }
  return s;
}

}  // namespace ffsva::telemetry
