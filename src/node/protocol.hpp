// RPC payload schemas for the scheduler ⇄ node control plane (DESIGN.md
// §15). Every payload is fixed-width fields written field-by-field through
// runtime/binary_io.hpp — the same discipline as the wire header, so no
// struct padding ever reaches the wire.
//
// The periodic load report is the engine's own core::InstanceSnapshot,
// serialized as-is (every StreamSnapshot field, fault counters included).
// There is deliberately no second "cluster stats" schema: what the
// scheduler sees is exactly what a local snapshot() caller sees, with the
// node translating engine-local stream ids to cluster-global ids.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/pipeline.hpp"
#include "node/stream_spec.hpp"

namespace ffsva::node {

/// kAssignStream: hand a stream (or the remainder of one) to a node.
struct AssignStream {
  StreamSpec spec;
  /// True when this assignment resumes a stream handed off from another
  /// node (spec.begin is that node's ingest cursor). Drives the node's
  /// `node.handoffs_in` counter; the engine itself doesn't care.
  bool resume = false;

  std::string serialize() const;
  static std::optional<AssignStream> parse(std::string_view payload);
};

/// kAssignAck: the node's answer.
struct AssignAck {
  std::uint32_t stream_id = 0;
  bool ok = false;
  std::int32_t local_id = -1;  ///< Engine-local id on the node (diagnostic).

  std::string serialize() const;
  static std::optional<AssignAck> parse(std::string_view payload);
};

/// kEndStream: cut one stream's ingest (first half of a hand-off).
struct EndStream {
  std::uint32_t stream_id = 0;

  std::string serialize() const;
  static std::optional<EndStream> parse(std::string_view payload);
};

/// kStreamEnded: the stream has quiesced on the node. `cursor` is the next
/// un-ingested absolute frame index — the `begin` of a resumed assignment.
/// Sent after the stream's kResults frame, so by the time the scheduler
/// sees this, the node's verdicts for the stream are already in hand.
struct StreamEnded {
  std::uint32_t stream_id = 0;
  std::uint64_t cursor = 0;
  std::uint64_t ingested = 0;  ///< Frames this node ingested for the stream.
  std::uint64_t emitted = 0;   ///< Frames that survived the whole cascade.

  std::string serialize() const;
  static std::optional<StreamEnded> parse(std::string_view payload);
};

/// kResults: the per-frame verdicts a node accumulated for one stream —
/// the absolute indices of frames that survived the cascade (every other
/// ingested frame was filtered). Merging the per-node sets reconstructs
/// the exact single-process output set (the hand-off conservation check).
struct StreamResults {
  std::uint32_t stream_id = 0;
  std::vector<std::uint64_t> emitted_frames;

  std::string serialize() const;
  static std::optional<StreamResults> parse(std::string_view payload);
};

/// kSnapshot reply: the engine snapshot, verbatim.
std::string serialize_snapshot(const core::InstanceSnapshot& snap);
std::optional<core::InstanceSnapshot> parse_snapshot(std::string_view payload);

}  // namespace ffsva::node
