// Table 1 — Information of Evaluation Videos.
//
// Paper:
//   Video    Resolution  Object  FPS     TOR
//   Coral    1280*720    Person  30 FPS  50%
//   Jackson  600*400     Car     30 FPS  8%
//
// Our synthetic equivalents target the same object class, frame rate and
// TOR (see DESIGN.md for the substitution); the realized TOR is measured by
// rendering the stream and checking ground truth per frame. The codec row
// shows the stored-video footprint that the offline prefetch path decodes.
#include "common.hpp"
#include "video/codec.hpp"

using namespace ffsva;

int main() {
  bench::print_header("TABLE 1 -- Information of evaluation videos (synthetic equivalents)");
  std::printf("%-16s %-11s %-8s %-7s %-10s %-10s\n", "Video", "Resolution",
              "Object", "FPS", "TOR(meas)", "TOR(paper)");
  bench::print_rule();

  const std::int64_t frames = 3000;
  {
    const auto row = video::describe("Jackson-synth", video::jackson_profile(), 42, frames);
    std::printf("%-16s %dx%-7d %-8s %-7.0f %-10.3f %-10s\n", row.name.c_str(),
                row.width, row.height, row.object.c_str(), row.fps, row.tor, "0.08");
  }
  {
    const auto row = video::describe("Coral-synth", video::coral_profile(), 43, frames);
    std::printf("%-16s %dx%-7d %-8s %-7.0f %-10.3f %-10s\n", row.name.c_str(),
                row.width, row.height, row.object.c_str(), row.fps, row.tor, "0.50");
  }

  bench::print_rule();
  std::printf("Stored-video codec footprint (delta+RLE, deadzone 4, 1000 frames):\n");
  for (const auto& [name, cfg, seed] :
       {std::tuple{"Jackson-synth", video::jackson_profile(), 42ull},
        std::tuple{"Coral-synth", video::coral_profile(), 43ull}}) {
    video::SceneSimulator sim(cfg, seed, 1000);
    std::vector<video::Frame> fs;
    for (int i = 0; i < 1000; ++i) fs.push_back(sim.render(i));
    const auto stats = video::StoredVideo::encode(fs, 32, 4).stats();
    std::printf("  %-14s raw %7.1f MB  encoded %7.1f MB  ratio %.2fx\n", name,
                stats.raw_bytes / 1e6, stats.encoded_bytes / 1e6,
                stats.compression_ratio());
  }
  return 0;
}
