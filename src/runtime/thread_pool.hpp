// Fixed-size worker pool.
//
// FFS-VA runs the SDDs of all streams on the CPU (paper Section 3.1.2); the
// threaded engine multiplexes them over this pool instead of spawning one
// OS thread per stream when stream counts are large. Tasks are type-erased
// std::function<void()>; submit() returns a future-like completion via
// wait_idle() because pipeline stages track their own results through
// queues, not return values.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "runtime/annotations.hpp"

namespace ffsva::runtime {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task. Returns false if the pool is shutting down.
  bool submit(std::function<void()> task) FFSVA_EXCLUDES(mu_);

  /// Block until every submitted task has finished and the queue is empty.
  void wait_idle() FFSVA_EXCLUDES(mu_);

  /// Stop accepting tasks, finish queued work, join workers. Idempotent.
  void shutdown() FFSVA_EXCLUDES(mu_);

  std::size_t size() const { return workers_.size(); }

 private:
  void worker_loop() FFSVA_EXCLUDES(mu_);

  mutable Mutex mu_{rank::kThreadPool, "ThreadPool::mu_"};
  CondVar work_available_;
  CondVar idle_;
  // bounded-ok: the pool's own task queue; producers are the engine's
  // bounded stages and fork-join loops, whose outstanding submits are
  // bounded by chunk counts, not an inter-thread frame channel.
  std::deque<std::function<void()>> tasks_ FFSVA_GUARDED_BY(mu_);
  std::vector<std::thread> workers_;  ///< Written by ctor/shutdown only.
  std::size_t active_ FFSVA_GUARDED_BY(mu_) = 0;
  bool stopping_ FFSVA_GUARDED_BY(mu_) = false;
};

// --- CPU-affinity helpers ----------------------------------------------------
// Used by the engine to pin ingest (prefetch/decode) threads so they stop
// migrating across — and fighting with — the compute pool's cores
// (DESIGN.md §13). Affinity is a hint: on platforms without an affinity
// API, or when the requested CPU is outside the process mask, pinning
// degrades to a no-op and the engine runs exactly as before.

/// CPUs available to this process (the affinity mask's population when the
/// platform exposes one, hardware_concurrency otherwise; always >= 1).
int cpu_count();

/// Pin the calling thread to the (cpu mod cpu_count())-th CPU of the
/// process's affinity mask. Returns true if the pin took effect.
bool pin_current_thread(int cpu);

/// Resolve the effective ingest-affinity base: the FFSVA_AFFINITY
/// environment variable (an integer base CPU, or "off"/empty to disable)
/// overrides `config_value`; negative means pinning disabled.
int resolve_ingest_affinity(int config_value);

}  // namespace ffsva::runtime
