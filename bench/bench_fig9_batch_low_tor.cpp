// Figure 9 — throughput and latency under different batch mechanisms,
// TOR 0.203, 10 video streams.
//
// Paper: (a) static batch throughput keeps growing with BatchSize;
// feedback-queue dips slightly (~8%) at large BatchSize because frames wait
// for the queue-full level; dynamic batch trades ~16% throughput for
// (b) ~50% lower and nearly flat average latency.
//
// Also includes the feedback-queue threshold ablation from DESIGN.md.
#include "common.hpp"

using namespace ffsva;

int main() {
  bench::print_header("FIGURE 9 -- batch mechanisms at TOR ~= 0.203 (10 streams, offline)");
  const auto params = sim::MarkovParams::for_tor(0.203);

  std::printf("%-10s | %-21s | %-21s | %-21s\n", "", "static batch",
              "feedback queue", "dynamic batch");
  std::printf("%-10s | %9s %9s | %9s %9s | %9s %9s\n", "BatchSize", "thr(FPS)",
              "lat(ms)", "thr(FPS)", "lat(ms)", "thr(FPS)", "lat(ms)");
  bench::print_rule();
  for (int bs : {1, 2, 4, 8, 12, 16, 20, 24, 30}) {
    double thr[3], lat[3];
    for (const auto policy : {core::BatchPolicy::kStatic, core::BatchPolicy::kFeedback,
                              core::BatchPolicy::kDynamic}) {
      core::FfsVaConfig cfg;
      cfg.batch_policy = policy;
      cfg.batch_size = bs;
      const auto r = sim::simulate_ffsva(
          bench::sim_setup_from(params, cfg, 10, false, 4000));
      thr[static_cast<int>(policy)] = r.throughput_fps;
      lat[static_cast<int>(policy)] = r.output_latency_ms.mean();
    }
    std::printf("%-10d | %9.0f %9.0f | %9.0f %9.0f | %9.0f %9.0f\n", bs, thr[0],
                lat[0], thr[1], lat[1], thr[2], lat[2]);
  }

  // Figure 9b's latency story lives in the paced (online) regime: with
  // 30-FPS arrivals the SNM queue is shallow, so the feedback mechanism
  // waits to assemble min(BatchSize, queue threshold) frames while the
  // dynamic batch takes whatever is present — "the dynamic batch mechanism
  // reduces the average latency by 50%" (Section 4.3.2).
  bench::print_header("FIGURE 9b (paced) -- latency at 10 online 30-FPS streams");
  std::printf("%-10s | %12s | %12s | %12s\n", "BatchSize", "static(ms)",
              "feedback(ms)", "dynamic(ms)");
  bench::print_rule();
  for (int bs : {1, 2, 4, 8, 12, 16, 20, 24, 30}) {
    double lat[3];
    for (const auto policy : {core::BatchPolicy::kStatic, core::BatchPolicy::kFeedback,
                              core::BatchPolicy::kDynamic}) {
      core::FfsVaConfig cfg;
      cfg.batch_policy = policy;
      cfg.batch_size = bs;
      const auto r = sim::simulate_ffsva(
          bench::sim_setup_from(params, cfg, 10, true, 100000, 60.0));
      lat[static_cast<int>(policy)] = r.output_latency_ms.mean();
    }
    std::printf("%-10d | %12.0f | %12.0f | %12.0f\n", bs, lat[0], lat[1], lat[2]);
  }
  std::printf("(paper: feedback latency grows with BatchSize; dynamic stays flat,\n"
              " ~50%% lower on average)\n");

  bench::print_header("ABLATION -- feedback-queue thresholds {SDD, SNM, T-YOLO}");
  std::printf("%-16s %10s %10s\n", "thresholds", "thr(FPS)", "lat(ms)");
  bench::print_rule();
  for (const auto& [sdd, snm, ty] :
       {std::tuple{1, 4, 1}, std::tuple{2, 10, 2}, std::tuple{4, 20, 4},
        std::tuple{8, 40, 8}}) {
    core::FfsVaConfig cfg;
    cfg.batch_policy = core::BatchPolicy::kFeedback;
    cfg.batch_size = 16;
    cfg.sdd_queue_depth = sdd;
    cfg.snm_queue_depth = snm;
    cfg.tyolo_queue_depth = ty;
    const auto r =
        sim::simulate_ffsva(bench::sim_setup_from(params, cfg, 10, false, 4000));
    std::printf("{%d,%2d,%d}%9s %10.0f %10.0f\n", sdd, snm, ty, "",
                r.throughput_fps, r.output_latency_ms.mean());
  }
  std::printf("(paper fixes {2,10,2}: small thresholds cut latency, large ones\n"
              " raise throughput at the cost of latency)\n");
  return 0;
}
