#include "common.hpp"

namespace ffsva::bench {

CalibratedStream build_stream(video::SceneConfig base, double tor, std::uint64_t seed,
                              std::int64_t calib_frames, std::int64_t eval_frames,
                              int snm_epochs) {
  CalibratedStream s;
  s.cfg = base;
  s.cfg.tor = tor;
  s.sim = std::make_shared<video::SceneSimulator>(s.cfg, seed,
                                                  calib_frames + eval_frames);
  std::vector<video::Frame> calib;
  calib.reserve(static_cast<std::size_t>(calib_frames));
  for (std::int64_t i = 0; i < calib_frames; ++i) calib.push_back(s.sim->render(i));

  detect::SpecializeConfig sc;
  sc.target = s.cfg.target;
  sc.snm.epochs = snm_epochs;
  s.models = detect::specialize_stream(calib, sc, seed);

  s.eval_begin = calib_frames;
  s.trace = core::record_trace(*s.sim, s.models, calib_frames,
                               calib_frames + eval_frames);
  return s;
}

void print_header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

void print_rule() {
  std::printf("----------------------------------------------------------------\n");
}

sim::SimSetup sim_setup_from(const sim::MarkovParams& params,
                             const core::FfsVaConfig& config, int streams,
                             bool online, std::int64_t frames_per_stream,
                             double duration_sec) {
  sim::SimSetup s;
  s.config = config;
  s.num_streams = streams;
  s.online = online;
  s.duration_sec = duration_sec;
  s.frames_per_stream = frames_per_stream;
  s.make_outcomes = [params](int i) {
    return std::make_unique<sim::MarkovOutcomes>(params,
                                                 0xbe5c40u + static_cast<unsigned>(i));
  };
  return s;
}

}  // namespace ffsva::bench
