#include "runtime/supervision.hpp"

#include <utility>

namespace ffsva::runtime {

void Watchdog::start(std::chrono::milliseconds tick, std::function<void()> check) {
  stop();
  {
    std::lock_guard lk(mu_);
    stopping_ = false;
  }
  thread_ = std::thread([this, tick, check = std::move(check)] {
    std::unique_lock lk(mu_);
    for (;;) {
      if (cv_.wait_for(lk, tick, [&] { return stopping_; })) return;
      lk.unlock();
      check();
      lk.lock();
    }
  });
}

void Watchdog::stop() {
  {
    std::lock_guard lk(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

}  // namespace ffsva::runtime
