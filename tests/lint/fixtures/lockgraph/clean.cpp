// Fixture: well-ordered locking — consistent AB order, ranked locks taken
// rank-ascending, waits in predicate loops, no blocking under locks. The
// analyzer must stay silent.
#include "runtime/annotations.hpp"

using ffsva::runtime::CondVar;
using ffsva::runtime::Mutex;
using ffsva::runtime::MutexLock;
using ffsva::runtime::UniqueLock;

namespace cleanfix {

struct Orderly {
  Mutex outer_{ffsva::runtime::rank::kEngineStreams, "fixture::outer"};
  Mutex inner_{ffsva::runtime::rank::kBoundedQueue, "fixture::inner"};
  CondVar cv_;
  bool ready_ = false;
  int value_ = 0;

  void nested_in_order() {
    MutexLock lo(outer_);
    MutexLock li(inner_);
    ++value_;
  }

  void same_order_elsewhere() {
    MutexLock lo(outer_);
    {
      MutexLock li(inner_);
      --value_;
    }
  }

  void wait_ready() {
    UniqueLock lk(inner_);
    while (!ready_) cv_.wait(lk);
  }
};

}  // namespace cleanfix
