# Empty dependencies file for bench_fig7_filterdegree.
# This may be replaced when dependencies are built.
