// Forward-pass semantics of each layer against hand-computed values.
#include "nn/layers.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace ffsva::nn {
namespace {

runtime::Xoshiro256 rng(1234);

TEST(Conv2d, OutputShape) {
  Conv2d conv(3, 8, 3, 2, 1, rng);
  Tensor x(2, 3, 50, 50);
  const Tensor y = conv.forward(x, false);
  EXPECT_EQ(y.n(), 2);
  EXPECT_EQ(y.c(), 8);
  EXPECT_EQ(y.h(), 25);
  EXPECT_EQ(y.w(), 25);
}

TEST(Conv2d, IdentityKernelReproducesInput) {
  Conv2d conv(1, 1, 3, 1, 1, rng);
  conv.weight.fill(0.0f);
  conv.weight.at(0, 0, 1, 1) = 1.0f;  // center tap
  conv.bias.fill(0.0f);
  Tensor x(1, 1, 4, 4);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = static_cast<float>(i);
  const Tensor y = conv.forward(x, false);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_FLOAT_EQ(y[i], x[i]);
}

TEST(Conv2d, BiasAddsUniformOffset) {
  Conv2d conv(1, 1, 3, 1, 1, rng);
  conv.weight.fill(0.0f);
  conv.bias.at(0, 0, 0, 0) = 2.5f;
  Tensor x(1, 1, 3, 3);
  const Tensor y = conv.forward(x, false);
  for (std::size_t i = 0; i < y.size(); ++i) EXPECT_FLOAT_EQ(y[i], 2.5f);
}

TEST(Conv2d, SumKernelComputesLocalSums) {
  Conv2d conv(1, 1, 3, 1, 1, rng);
  conv.weight.fill(1.0f);
  conv.bias.fill(0.0f);
  Tensor x(1, 1, 3, 3);
  x.fill(1.0f);
  const Tensor y = conv.forward(x, false);
  EXPECT_FLOAT_EQ(y.at(0, 0, 1, 1), 9.0f);  // full window
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 4.0f);  // corner: zero padding
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 1), 6.0f);  // edge
}

TEST(Conv2d, ChannelMismatchThrows) {
  Conv2d conv(3, 4, 3, 1, 1, rng);
  Tensor x(1, 2, 8, 8);
  EXPECT_THROW(conv.forward(x, false), std::invalid_argument);
}

TEST(MaxPool2d, SelectsMaximum) {
  MaxPool2d pool(2, 2);
  Tensor x(1, 1, 2, 2);
  x.at(0, 0, 0, 0) = 1;
  x.at(0, 0, 0, 1) = 5;
  x.at(0, 0, 1, 0) = 3;
  x.at(0, 0, 1, 1) = 2;
  const Tensor y = pool.forward(x, false);
  EXPECT_EQ(y.h(), 1);
  EXPECT_EQ(y.w(), 1);
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 5.0f);
}

TEST(MaxPool2d, BackwardRoutesToArgmax) {
  MaxPool2d pool(2, 2);
  Tensor x(1, 1, 2, 2);
  x.at(0, 0, 0, 1) = 9.0f;
  pool.forward(x, true);
  Tensor g(1, 1, 1, 1);
  g.at(0, 0, 0, 0) = 4.0f;
  const Tensor gin = pool.backward(g);
  EXPECT_FLOAT_EQ(gin.at(0, 0, 0, 1), 4.0f);
  EXPECT_FLOAT_EQ(gin.at(0, 0, 0, 0), 0.0f);
}

TEST(Linear, MatrixVectorSemantics) {
  Linear fc(3, 2, rng);
  fc.weight.fill(0.0f);
  fc.weight.at(0, 0, 0, 0) = 1.0f;  // y0 = x0
  fc.weight.at(1, 2, 0, 0) = 2.0f;  // y1 = 2*x2
  fc.bias.at(0, 0, 0, 0) = 0.5f;
  Tensor x(1, 3, 1, 1);
  x.at(0, 0, 0, 0) = 3.0f;
  x.at(0, 2, 0, 0) = 4.0f;
  const Tensor y = fc.forward(x, false);
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 3.5f);
  EXPECT_FLOAT_EQ(y.at(0, 1, 0, 0), 8.0f);
}

TEST(Linear, FlattensChw) {
  Linear fc(12, 1, rng);
  Tensor x(2, 3, 2, 2);
  EXPECT_NO_THROW(fc.forward(x, false));
  Tensor bad(2, 3, 2, 3);
  EXPECT_THROW(fc.forward(bad, false), std::invalid_argument);
}

TEST(ReLU, ClampsNegatives) {
  ReLU relu;
  Tensor x(1, 1, 1, 3);
  x[0] = -2;
  x[1] = 0;
  x[2] = 3;
  const Tensor y = relu.forward(x, false);
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_FLOAT_EQ(y[1], 0.0f);
  EXPECT_FLOAT_EQ(y[2], 3.0f);
}

TEST(Sigmoid, KnownValues) {
  Sigmoid s;
  Tensor x(1, 1, 1, 3);
  x[0] = 0.0f;
  x[1] = 100.0f;
  x[2] = -100.0f;
  const Tensor y = s.forward(x, false);
  EXPECT_FLOAT_EQ(y[0], 0.5f);
  EXPECT_NEAR(y[1], 1.0f, 1e-6);
  EXPECT_NEAR(y[2], 0.0f, 1e-6);
}

TEST(Sequential, ChainsLayersAndCountsParams) {
  runtime::Xoshiro256 r(5);
  Sequential net;
  net.add(std::make_unique<Conv2d>(1, 2, 3, 2, 1, r))
      .add(std::make_unique<ReLU>())
      .add(std::make_unique<Linear>(2 * 4 * 4, 1, r));
  Tensor x(1, 1, 8, 8);
  const Tensor y = net.forward(x);
  EXPECT_EQ(y.n(), 1);
  EXPECT_EQ(y.c(), 1);
  // conv: 2*1*3*3 + 2 = 20; linear: 32 + 1 = 33. Total 53.
  EXPECT_EQ(net.num_parameters(), 53u);
  EXPECT_EQ(net.num_layers(), 3u);
}

TEST(Sequential, SaveLoadRoundTrip) {
  runtime::Xoshiro256 r1(5), r2(99);
  auto build = [](runtime::Xoshiro256& r) {
    auto net = std::make_unique<Sequential>();
    net->add(std::make_unique<Conv2d>(1, 2, 3, 2, 1, r))
        .add(std::make_unique<ReLU>())
        .add(std::make_unique<Linear>(2 * 4 * 4, 1, r));
    return net;
  };
  auto a = build(r1);
  auto b = build(r2);
  Tensor x(1, 1, 8, 8);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = static_cast<float>(i % 7) * 0.1f;
  std::stringstream ss;
  a->save(ss);
  b->load(ss);
  const Tensor ya = a->forward(x);
  const Tensor yb = b->forward(x);
  EXPECT_FLOAT_EQ(ya.at(0, 0, 0, 0), yb.at(0, 0, 0, 0));
}

TEST(Sequential, ZeroGradClearsAccumulation) {
  runtime::Xoshiro256 r(5);
  Sequential net;
  net.add(std::make_unique<Linear>(4, 2, r));
  Tensor x(1, 4, 1, 1);
  x.fill(1.0f);
  net.forward(x, true);
  Tensor g(1, 2, 1, 1);
  g.fill(1.0f);
  net.backward(g);
  bool any_nonzero = false;
  for (auto p : net.params()) {
    if (p.grad->abs_max() > 0) any_nonzero = true;
  }
  EXPECT_TRUE(any_nonzero);
  net.zero_grad();
  for (auto p : net.params()) EXPECT_EQ(p.grad->abs_max(), 0.0);
}

}  // namespace
}  // namespace ffsva::nn
