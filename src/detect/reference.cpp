#include "detect/reference.hpp"

namespace ffsva::detect {

DetectionResult ReferenceDetector::detect(const image::Image& frame) const {
  DetectionResult out;
  const auto comps = foreground_components(frame, background_, config_.segmentation);
  out.detections.reserve(comps.size());
  for (const auto& c : comps) {
    out.detections.push_back(classify_component(
        c, frame.width(), frame.height(), config_.segmentation.min_pixels,
        config_.classifier));
  }
  return out;
}

}  // namespace ffsva::detect
