// Seeded violation for ffsva_lint --self-test: raw socket syscalls outside
// src/net/ with no socket-ok marker. The self-test also scans this file
// under a pretend src/net/ path, where it must pass (the syscalls' one
// legal home).
#include <sys/socket.h>

int fixture_dial(const void* addr, unsigned len) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (::connect(fd, static_cast<const sockaddr*>(addr), len) != 0) return -1;
  char byte = 0;
  ::send(fd, &byte, 1, 0);
  ::recv(fd, &byte, 1, 0);
  return fd;
}
