// relaxed-ok: the node/hand-off tallies (streams_owned_, handoffs_in_/out_)
// are monotonic telemetry counters surfaced as gauges; every cross-thread
// handshake that matters (owned_ maps, channel state) is under mu_ or the
// stopping_ acquire/release pair.
#include "node/node_server.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <exception>
#include <thread>
#include <utility>

namespace ffsva::node {

namespace {

core::FfsVaConfig node_config(const NodeOptions& opts) {
  core::FfsVaConfig cfg = opts.config;
  cfg.serve_until_stopped = true;
  cfg.max_streams = std::max(opts.max_streams, 1);
  return cfg;
}

}  // namespace

NodeServer::NodeServer(NodeOptions opts)
    : opts_(std::move(opts)), inst_(node_config(opts_)) {}

NodeServer::~NodeServer() {
  stop();
  if (engine_.joinable()) engine_.join();
}

bool NodeServer::start() {
  if (!listener_.listen(opts_.listen)) return false;
  inst_.set_output_sink([this](const core::OutputEvent& ev) {
    // Reference-thread context. WindowSource stamps the cluster-global
    // stream id into every frame, so no translation is needed here.
    runtime::MutexLock lk(mu_);
    emitted_[static_cast<std::uint32_t>(ev.frame.stream_id)].push_back(
        static_cast<std::uint64_t>(ev.frame.index));
  });
  wire_node_metrics();
  if (!opts_.metrics_path.empty()) {
    inst_.set_metrics_node_id(static_cast<int>(opts_.node_id));
    inst_.enable_metrics_export(opts_.metrics_path, opts_.metrics_label);
  }
  // thread-ok: the engine thread; joined in serve()'s epilogue (or stop()).
  engine_ = std::thread([this] {
    try {
      stats_ = inst_.run(opts_.online);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "ffsva_node[%u]: engine failed: %s\n",
                   opts_.node_id, e.what());
      stopping_.store(true, std::memory_order_release);
    }
  });
  // Gate on engine readiness so an immediately-arriving kAssignStream hits
  // the live dynamic-attach path, not the pre-run/throwing window.
  // cancel-ok: bounded spin (400 x 5 ms); start() returns regardless.
  for (int i = 0; i < 400 && !inst_.snapshot().running; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return true;
}

void NodeServer::stop() { stopping_.store(true, std::memory_order_release); }

void NodeServer::serve() {
  std::optional<net::Channel> ch;
  while (!stopping_.load(std::memory_order_acquire)) {
    if (!ch || !ch->connected()) {
      // No scheduler attached: keep serving streams, wait for a dial.
      // Quiesced streams hold their results until a channel exists.
      ch.reset();
      auto sock = listener_.accept(100);
      if (sock) {
        net::Channel fresh(std::move(*sock), &counters_);
        if (fresh.handshake_server()) ch.emplace(std::move(fresh));
      }
      continue;
    }
    const auto frame = ch->recv(50);
    if (frame) handle_frame(*ch, *frame);
    poll_quiesced(&*ch);
  }
  inst_.stop();
  if (engine_.joinable()) engine_.join();
  listener_.close();
}

void NodeServer::handle_frame(net::Channel& ch, const net::WireFrame& frame) {
  switch (frame.type) {
    case net::MsgType::kHeartbeat:
      ch.send(net::MsgType::kHeartbeat);
      return;
    case net::MsgType::kSnapshot:
      ch.send(net::MsgType::kSnapshot, serialize_snapshot(global_snapshot()));
      return;
    case net::MsgType::kAssignStream:
      handle_assign(ch, frame);
      return;
    case net::MsgType::kEndStream: {
      const auto end = EndStream::parse(frame.payload);
      if (!end) return;
      int local = -1;
      {
        runtime::MutexLock lk(mu_);
        auto it = owned_.find(end->stream_id);
        if (it == owned_.end()) return;
        it->second.handoff = true;
        local = it->second.local_id;
      }
      inst_.end_stream(local);
      return;
    }
    case net::MsgType::kDrain: {
      std::vector<int> locals;
      {
        runtime::MutexLock lk(mu_);
        for (auto& [gid, owned] : owned_) locals.push_back(owned.local_id);
      }
      for (const int local : locals) inst_.end_stream(local);
      return;
    }
    case net::MsgType::kStop:
      // Ack only once the engine has fully stopped: the scheduler treats
      // kStopAck as "this node's process may exit now".
      inst_.stop();
      if (engine_.joinable()) engine_.join();
      ch.send(net::MsgType::kStopAck);
      stopping_.store(true, std::memory_order_release);
      return;
    // No default: -Wswitch must flag a new MsgType the server ignores.
    // These are scheduler-bound (or scheduler-sent control we answer above);
    // a server ignores them when echoed back.
    case net::MsgType::kHello:
    case net::MsgType::kHelloAck:
    case net::MsgType::kHelloReject:
    case net::MsgType::kAssignAck:
    case net::MsgType::kStreamEnded:
    case net::MsgType::kStopAck:
    case net::MsgType::kResults:
      return;
  }
  // Unknown-but-well-framed u16 values fall out of the switch and are
  // ignored (forward compat with newer peers).
}

void NodeServer::handle_assign(net::Channel& ch, const net::WireFrame& frame) {
  const auto assign = AssignStream::parse(frame.payload);
  if (!assign) {
    AssignAck nack;
    ch.send(net::MsgType::kAssignAck, nack.serialize());
    return;
  }
  AssignAck ack;
  ack.stream_id = assign->spec.stream_id;
  bool duplicate;
  {
    runtime::MutexLock lk(mu_);
    duplicate = owned_.count(assign->spec.stream_id) != 0;
  }
  if (duplicate) {
    ch.send(net::MsgType::kAssignAck, ack.serialize());  // ok=false
    return;
  }
  // Materialization (render calibration window + specialize) is the
  // expensive part of accepting a hand-off; it happens outside any lock and
  // before the engine is touched.
  MaterializedStream m = materialize(assign->spec);
  int local = -1;
  try {
    local = inst_.add_stream(std::move(m.source), std::move(m.models));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ffsva_node[%u]: assign %u rejected: %s\n",
                 opts_.node_id, assign->spec.stream_id, e.what());
    ch.send(net::MsgType::kAssignAck, ack.serialize());  // ok=false
    return;
  }
  {
    runtime::MutexLock lk(mu_);
    Owned owned;
    owned.spec = assign->spec;
    owned.local_id = local;
    owned_[assign->spec.stream_id] = owned;
    local_to_global_[local] = assign->spec.stream_id;
  }
  streams_owned_.fetch_add(1, std::memory_order_relaxed);
  if (assign->resume) handoffs_in_.fetch_add(1, std::memory_order_relaxed);
  ack.ok = true;
  ack.local_id = local;
  ch.send(net::MsgType::kAssignAck, ack.serialize());
}

void NodeServer::poll_quiesced(net::Channel* ch) {
  if (ch == nullptr || !ch->connected()) return;
  struct Pending {
    std::uint32_t gid;
    Owned owned;
  };
  std::vector<Pending> candidates;
  {
    runtime::MutexLock lk(mu_);
    for (const auto& [gid, owned] : owned_) {
      candidates.push_back({gid, owned});
    }
  }
  if (candidates.empty()) return;
  const core::InstanceSnapshot snap = inst_.snapshot();
  for (const auto& c : candidates) {
    if (!inst_.stream_quiesced(c.owned.local_id)) continue;
    // Quiescence is exact: ingest stopped and every ingested frame reached
    // a terminal outcome, the last one *after* its output was delivered to
    // the sink — so the emitted set harvested below is complete.
    std::uint64_t ingested = 0;
    for (const auto& ss : snap.streams) {
      if (ss.id == c.owned.local_id) {
        ingested = ss.prefetch_in;
        break;
      }
    }
    StreamResults results;
    results.stream_id = c.gid;
    {
      runtime::MutexLock lk(mu_);
      auto it = emitted_.find(c.gid);
      if (it != emitted_.end()) results.emitted_frames = it->second;
    }
    std::sort(results.emitted_frames.begin(), results.emitted_frames.end());
    StreamEnded ended;
    ended.stream_id = c.gid;
    ended.cursor = c.owned.spec.begin + ingested;
    ended.ingested = ingested;
    ended.emitted = results.emitted_frames.size();
    // Results travel before the terminal notice; if either send fails the
    // stream stays registered and the report is retried on the next
    // scheduler connection (the scheduler dedupes by frame index).
    if (!ch->send(net::MsgType::kResults, results.serialize())) return;
    if (!ch->send(net::MsgType::kStreamEnded, ended.serialize())) return;
    {
      runtime::MutexLock lk(mu_);
      owned_.erase(c.gid);
      local_to_global_.erase(c.owned.local_id);
      emitted_.erase(c.gid);
    }
    streams_owned_.fetch_sub(1, std::memory_order_relaxed);
    // A migration order can race natural completion: if the serving window
    // is already fully ingested, the stream *finished* here — the scheduler
    // won't resume it elsewhere, so it isn't a hand-off and must not tilt
    // the handoffs_out/handoffs_in balance.
    if (c.owned.handoff && ended.cursor < c.owned.spec.end) {
      handoffs_out_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

core::InstanceSnapshot NodeServer::global_snapshot() {
  core::InstanceSnapshot snap = inst_.snapshot();
  runtime::MutexLock lk(mu_);
  std::vector<core::StreamSnapshot> visible;
  visible.reserve(snap.streams.size());
  for (auto& ss : snap.streams) {
    const auto it = local_to_global_.find(ss.id);
    if (it == local_to_global_.end()) continue;  // handed off / finished
    ss.id = static_cast<int>(it->second);
    visible.push_back(std::move(ss));
  }
  snap.streams = std::move(visible);
  return snap;
}

void NodeServer::wire_node_metrics() {
  auto& reg = inst_.metrics();
  reg.gauge("node.streams_owned", [this] {
    return static_cast<double>(streams_owned_.load(std::memory_order_relaxed));
  });
  reg.gauge("node.handoffs_in", [this] {
    return static_cast<double>(handoffs_in_.load(std::memory_order_relaxed));
  });
  reg.gauge("node.handoffs_out", [this] {
    return static_cast<double>(handoffs_out_.load(std::memory_order_relaxed));
  });
  reg.gauge("net.bytes_tx", [this] {
    return static_cast<double>(
        counters_.bytes_tx.load(std::memory_order_relaxed));
  });
  reg.gauge("net.bytes_rx", [this] {
    return static_cast<double>(
        counters_.bytes_rx.load(std::memory_order_relaxed));
  });
  reg.gauge("net.reconnects", [this] {
    return static_cast<double>(
        counters_.reconnects.load(std::memory_order_relaxed));
  });
}

}  // namespace ffsva::node
