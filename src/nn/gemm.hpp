// im2col + GEMM convolution path.
//
// The forward pass of Conv2d can be computed either directly (simple,
// gradient-checked — see layers.cpp) or by lowering to a matrix multiply:
// unfold every receptive field into a column (im2col), multiply by the
// [out_ch x in_ch*k*k] filter matrix, add bias. The GEMM form is how the
// GPU frameworks the paper builds on execute convolutions, and it is the
// faster CPU path for inference (contiguous inner loops); the pipeline's
// SNM uses it for batched prediction.
#pragma once

#include <vector>

#include "nn/tensor.hpp"

namespace ffsva::nn {

/// Unfold sample `n` of x into columns: out is [in_ch*k*k, oh*ow],
/// row-major. Zero padding outside the image.
void im2col(const Tensor& x, int n, int kernel, int stride, int pad,
            int out_h, int out_w, std::vector<float>& columns);

/// Row-major C[MxN] = A[MxK] * B[KxN] (C overwritten). Plain ikj loop
/// ordering: B rows stream through cache.
void gemm(const float* a, const float* b, float* c, int m, int k, int n);

/// Full convolution via im2col+GEMM. weight: [out_ch, in_ch, k, k];
/// bias: [out_ch,1,1,1]. Numerically identical (up to FP reassociation)
/// to the direct path in Conv2d::forward.
Tensor conv2d_im2col(const Tensor& x, const Tensor& weight, const Tensor& bias,
                     int stride, int pad);

}  // namespace ffsva::nn
