// In-memory stored-video codec (temporal delta + run-length coding).
//
// The paper's offline mode reads a 55 GB day-long video file and its
// headline offline throughput (404 FPS) is bounded by the CPU-side
// prefetch/decode path, not by the GPU filters. To reproduce that path we
// store synthetic streams in a simple but real predictive codec:
//
//  * every `keyframe_interval`-th frame is coded standalone (delta against
//    a zero frame), the rest against the previous frame (mod-256 residual);
//  * residual planes are run-length coded: long zero runs (static
//    background) collapse to a few bytes, so compression genuinely tracks
//    scene activity;
//  * decoding is sequential per GOP with random access at keyframes —
//    the same access pattern a real surveillance recording gives a reader.
//
// Ground truth travels uncompressed next to the bitstream (it is evaluation
// metadata, not pixels).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "video/frame.hpp"

namespace ffsva::video {

struct CodecStats {
  std::size_t raw_bytes = 0;
  std::size_t encoded_bytes = 0;
  double compression_ratio() const {
    return encoded_bytes ? static_cast<double>(raw_bytes) / encoded_bytes : 0.0;
  }
};

class StoredVideo {
 public:
  /// Encode a sequence of frames (all must share one shape).
  ///
  /// `deadzone`: residuals with |difference| <= deadzone are coded as zero
  /// (near-lossless mode; 0 = lossless). Sensor noise otherwise defeats
  /// temporal prediction entirely — the same reason every real surveillance
  /// codec quantizes. The encoder predicts from its own *reconstruction*,
  /// so error never exceeds the deadzone regardless of GOP length.
  static StoredVideo encode(const std::vector<Frame>& frames,
                            int keyframe_interval = 32, int deadzone = 0);

  std::int64_t frame_count() const { return static_cast<std::int64_t>(offsets_.size()); }
  int width() const { return width_; }
  int height() const { return height_; }
  int channels() const { return channels_; }
  int keyframe_interval() const { return keyframe_interval_; }
  CodecStats stats() const;

  friend class VideoReader;

 private:
  int width_ = 0, height_ = 0, channels_ = 0;
  int keyframe_interval_ = 32;
  std::vector<std::uint8_t> bitstream_;
  std::vector<std::size_t> offsets_;   ///< Start of each frame's packet.
  std::vector<std::size_t> sizes_;     ///< Packet length per frame.
  std::vector<GroundTruth> gt_;        ///< Sidecar ground truth.
  std::vector<double> pts_;
};

/// Sequential reader with keyframe seeking. Decoding does real per-pixel
/// work, which is what gives the offline prefetch stage its CPU cost.
class VideoReader {
 public:
  explicit VideoReader(const StoredVideo& video, int stream_id = 0);

  /// Next frame, or nullopt at end of stream.
  std::optional<Frame> next();

  /// Seek so that the following next() returns frame `index` (decodes from
  /// the preceding keyframe).
  void seek(std::int64_t index);

  std::int64_t position() const { return next_index_; }

 private:
  void decode_into(std::int64_t index);

  const StoredVideo& video_;
  int stream_id_;
  std::int64_t next_index_ = 0;
  image::Image previous_;  ///< Reconstruction state.
};

}  // namespace ffsva::video
