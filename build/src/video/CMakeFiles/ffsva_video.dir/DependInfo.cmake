
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/video/clips.cpp" "src/video/CMakeFiles/ffsva_video.dir/clips.cpp.o" "gcc" "src/video/CMakeFiles/ffsva_video.dir/clips.cpp.o.d"
  "/root/repo/src/video/codec.cpp" "src/video/CMakeFiles/ffsva_video.dir/codec.cpp.o" "gcc" "src/video/CMakeFiles/ffsva_video.dir/codec.cpp.o.d"
  "/root/repo/src/video/profiles.cpp" "src/video/CMakeFiles/ffsva_video.dir/profiles.cpp.o" "gcc" "src/video/CMakeFiles/ffsva_video.dir/profiles.cpp.o.d"
  "/root/repo/src/video/scene.cpp" "src/video/CMakeFiles/ffsva_video.dir/scene.cpp.o" "gcc" "src/video/CMakeFiles/ffsva_video.dir/scene.cpp.o.d"
  "/root/repo/src/video/tor_schedule.cpp" "src/video/CMakeFiles/ffsva_video.dir/tor_schedule.cpp.o" "gcc" "src/video/CMakeFiles/ffsva_video.dir/tor_schedule.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/image/CMakeFiles/ffsva_image.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/ffsva_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
