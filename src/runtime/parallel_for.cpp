// relaxed-ok: the chunk cursor and failure flag are independent counters —
// the join's happens-before edge is the acq_rel `finished` counter plus the
// mutex around `error`; see LoopState below.
#include "runtime/parallel_for.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>
#include <optional>
#include <thread>

#include "runtime/annotations.hpp"
#include "runtime/cancel.hpp"
#include "runtime/thread_pool.hpp"

namespace ffsva::runtime {

namespace {

int parallelism_from_env() {
  if (const char* env = std::getenv("FFSVA_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1) return static_cast<int>(std::min<long>(v, 256));
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

struct ComputePool {
  // Held across ThreadPool construction/shutdown, which takes the pool's
  // own lock (kThreadPool) and joins its workers.
  Mutex mu{rank::kComputePool, "ComputePool::mu"};
  std::unique_ptr<ThreadPool> pool FFSVA_GUARDED_BY(mu);
  int parallelism FFSVA_GUARDED_BY(mu) = 0;  // 0 = not yet resolved

  int ensure(int requested) FFSVA_EXCLUDES(mu) {
    MutexLock lk(mu);
    const int want = requested > 0 ? requested
                     : parallelism > 0 ? parallelism
                                       : parallelism_from_env();
    if (want == parallelism) return parallelism;
    pool.reset();
    // The caller is worker number `want`; the pool supplies the rest.
    if (want > 1) pool = std::make_unique<ThreadPool>(static_cast<std::size_t>(want - 1));
    parallelism = want;
    return parallelism;
  }

  ThreadPool* get() FFSVA_EXCLUDES(mu) {
    ensure(0);
    MutexLock lk(mu);
    return pool.get();
  }
};

ComputePool& state() {
  static auto* s = new ComputePool();  // leaked: outlives any static user
  return *s;
}

}  // namespace

ThreadPool* compute_pool() { return state().get(); }

int compute_parallelism() { return state().ensure(0); }

void set_compute_parallelism(int n) { state().ensure(std::max(1, n)); }

namespace {

/// Shared state of one parallel loop. Heap-owned (shared_ptr) by the
/// caller and every helper task: a helper may be scheduled only after the
/// join returned (or never, if every chunk was drained first), so it must
/// not touch the caller's stack. The join condition is "every *chunk*
/// finished", which the participating caller can always drive to
/// completion on its own — a queued helper that never runs claims no
/// chunks, so nested loops cannot deadlock even when all workers are
/// blocked in inner joins. `ctx` points into the caller's frame, but is
/// only dereferenced for a claimed chunk, and the join outlives every
/// claimed chunk by construction.
struct LoopState {
  LoopState(std::int64_t begin_, std::int64_t end_, std::int64_t grain_,
            std::int64_t chunks_, detail::ChunkFn invoke_, void* ctx_)
      : invoke(invoke_), ctx(ctx_), begin(begin_), end(end_), grain(grain_),
        chunks(chunks_) {
    // Capture the caller's cancel token (an aliasing copy — shared state,
    // so a late helper scheduled after the join can still install it
    // safely) and re-install it on every worker running this loop's
    // chunks: check_cancel() inside a chunk body then observes the same
    // cancellation request from every lane.
    if (const CancelToken* t = current_cancel_token()) token.emplace(*t);
  }

  const detail::ChunkFn invoke;
  void* const ctx;
  const std::int64_t begin, end, grain, chunks;
  std::optional<CancelToken> token;
  std::atomic<std::int64_t> next{0};
  std::atomic<std::int64_t> finished{0};
  std::atomic<bool> failed{false};
  Mutex mu{rank::kLoopJoin, "LoopState::mu"};
  CondVar cv;
  std::exception_ptr error FFSVA_GUARDED_BY(mu);

  void run_chunks() FFSVA_EXCLUDES(mu) {
    std::optional<ScopedCancelToken> scope;
    if (token) scope.emplace(*token);
    for (;;) {
      const std::int64_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= chunks) break;
      // A claimed chunk must always be counted finished, even when it is
      // skipped after a failure, or the join would wait forever.
      if (!failed.load(std::memory_order_relaxed)) {
        const std::int64_t b = begin + i * grain;
        try {
          invoke(ctx, b, std::min(end, b + grain));
        } catch (...) {
          MutexLock lk(mu);
          if (!error) error = std::current_exception();
          failed.store(true, std::memory_order_relaxed);
        }
      }
      if (finished.fetch_add(1, std::memory_order_acq_rel) + 1 == chunks) {
        MutexLock lk(mu);  // Pairs with the join's predicate check.
        cv.notify_all();
      }
    }
  }
};

}  // namespace

namespace detail {

void parallel_for_impl(std::int64_t begin, std::int64_t end, std::int64_t grain,
                       std::int64_t chunks, ChunkFn invoke, void* ctx) {
  ThreadPool* pool = compute_pool();
  if (pool == nullptr) {
    invoke(ctx, begin, end);
    return;
  }

  auto st = std::make_shared<LoopState>(begin, end, grain, chunks, invoke, ctx);
  const int helpers = static_cast<int>(
      std::min<std::int64_t>(static_cast<std::int64_t>(pool->size()), chunks - 1));
  for (int t = 0; t < helpers; ++t) {
    if (!pool->submit([st] { st->run_chunks(); })) break;
  }
  st->run_chunks();
  if (st->finished.load(std::memory_order_acquire) != chunks) {
    UniqueLock lk(st->mu);
    while (st->finished.load(std::memory_order_acquire) != chunks) st->cv.wait(lk);
  }
  std::exception_ptr error;
  {
    MutexLock lk(st->mu);
    error = st->error;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace detail

}  // namespace ffsva::runtime
