// SGD with momentum and weight decay — "the CNNs can automatically learn
// the characteristics of the target objects from the training dataset and
// update their weights by the stochastic gradient descent algorithm"
// (paper Section 2.1).
#pragma once

#include <vector>

#include "nn/layers.hpp"

namespace ffsva::nn {

class Sgd {
 public:
  struct Options {
    double lr = 0.01;
    double momentum = 0.9;
    double weight_decay = 1e-4;
  };

  Sgd(std::vector<Param> params, Options opts);

  /// Apply one update from the accumulated gradients, then zero them.
  void step();

  void set_lr(double lr) { opts_.lr = lr; }
  double lr() const { return opts_.lr; }

 private:
  std::vector<Param> params_;
  std::vector<Tensor> velocity_;
  Options opts_;
};

}  // namespace ffsva::nn
