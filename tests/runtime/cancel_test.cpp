// Cooperative cancellation: CancelToken flag/deadline semantics, the
// thread-local install protocol (runtime/cancel.hpp), and the propagation
// contract parallel_for promises — the caller's token is observed by every
// pool worker running that loop's chunks, so one cancel unwinds the whole
// fork-join.
#include "runtime/cancel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "runtime/parallel_for.hpp"
#include "runtime/supervision.hpp"

namespace ffsva::runtime {
namespace {

TEST(CancelToken, FreshTokenIsNotCancelled) {
  CancelToken t;
  EXPECT_FALSE(t.cancelled());
}

TEST(CancelToken, CancelLatchesAndCopiesAlias) {
  CancelToken a;
  CancelToken b = a;  // copy before the request
  a.cancel();
  EXPECT_TRUE(a.cancelled());
  EXPECT_TRUE(b.cancelled());
  CancelToken c = a;  // copy after the request still observes it
  EXPECT_TRUE(c.cancelled());
}

TEST(CancelToken, ResetClearsFlagAndDeadline) {
  CancelToken t;
  t.cancel();
  t.set_deadline_ms(1);  // long past on the steady clock
  ASSERT_TRUE(t.cancelled());
  t.reset();
  EXPECT_FALSE(t.cancelled());  // both the flag and the deadline are gone
}

TEST(CancelToken, PastDeadlineCancels) {
  CancelToken t;
  t.set_deadline_ms(steady_now_ms() - 10);
  EXPECT_TRUE(t.cancelled());
}

TEST(CancelToken, FutureDeadlineCancelsOnlyOncePassed) {
  CancelToken t;
  t.set_deadline_ms(steady_now_ms() + 40);
  EXPECT_FALSE(t.cancelled());
  const auto limit = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!t.cancelled() && std::chrono::steady_clock::now() < limit) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(t.cancelled());
}

TEST(CancelToken, ZeroDisarmsTheDeadline) {
  CancelToken t;
  t.set_deadline_ms(steady_now_ms() - 10);
  ASSERT_TRUE(t.cancelled());
  t.set_deadline_ms(0);
  EXPECT_FALSE(t.cancelled());  // flag was never set; deadline disarmed
}

TEST(CancelCheck, NoTokenInstalledIsANoOp) {
  EXPECT_EQ(current_cancel_token(), nullptr);
  EXPECT_FALSE(cancel_requested());
  EXPECT_NO_THROW(check_cancel());
}

TEST(CancelCheck, InstalledTokenDrivesCheckAndPoll) {
  CancelToken t;
  ScopedCancelToken install(t);
  EXPECT_EQ(current_cancel_token(), &t);
  EXPECT_FALSE(cancel_requested());
  EXPECT_NO_THROW(check_cancel());
  t.cancel();
  EXPECT_TRUE(cancel_requested());
  EXPECT_THROW(check_cancel(), CancelledError);
}

TEST(CancelCheck, ScopedInstallNestsAndRestores) {
  CancelToken outer;
  CancelToken inner;
  outer.cancel();
  {
    ScopedCancelToken a(outer);
    {
      ScopedCancelToken b(inner);  // shadows the cancelled outer token
      EXPECT_EQ(current_cancel_token(), &inner);
      EXPECT_FALSE(cancel_requested());
    }
    EXPECT_EQ(current_cancel_token(), &outer);  // restored on scope exit
    EXPECT_TRUE(cancel_requested());
  }
  EXPECT_EQ(current_cancel_token(), nullptr);
}

// Each chunk parks until it observes the cancel (bounded by a per-chunk
// timeout so a propagation bug fails the test instead of hanging it), then
// check_cancel() must throw: the loop cannot complete unless propagation to
// the pool workers is broken.
void park_until_cancelled_loop(std::atomic<int>& timed_out) {
  parallel_for(0, 64, 1, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) {
      const auto limit =
          std::chrono::steady_clock::now() + std::chrono::seconds(2);
      while (!cancel_requested() &&
             std::chrono::steady_clock::now() < limit) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      check_cancel();  // throws iff the cancel reached this lane
      timed_out.fetch_add(1, std::memory_order_relaxed);
    }
  });
}

TEST(CancelParallelFor, CancelMidLoopUnwindsEveryLane) {
  CancelToken token;
  ScopedCancelToken install(token);
  std::atomic<int> timed_out{0};
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    token.cancel();
  });
  EXPECT_THROW(park_until_cancelled_loop(timed_out), CancelledError);
  canceller.join();
  EXPECT_EQ(timed_out.load(std::memory_order_relaxed), 0);
}

TEST(CancelParallelFor, ArmedDeadlineUnwindsTheLoop) {
  CancelToken token;
  token.set_deadline_ms(steady_now_ms() + 50);
  ScopedCancelToken install(token);
  std::atomic<int> timed_out{0};
  EXPECT_THROW(park_until_cancelled_loop(timed_out), CancelledError);
  EXPECT_EQ(timed_out.load(std::memory_order_relaxed), 0);
}

TEST(CancelParallelFor, PreCancelledTokenThrowsBeforeAnyWork) {
  CancelToken token;
  token.cancel();
  ScopedCancelToken install(token);
  std::atomic<int> bodies{0};
  EXPECT_THROW(parallel_for(0, 1024, 1,
                            [&](std::int64_t, std::int64_t) {
                              check_cancel();
                              bodies.fetch_add(1, std::memory_order_relaxed);
                            }),
               CancelledError);
  EXPECT_EQ(bodies.load(std::memory_order_relaxed), 0);
}

}  // namespace
}  // namespace ffsva::runtime
