// Seeded violation for ffsva_lint --self-test: a marker with no reason.
// A bare marker is worse than none — it silences the rule while recording
// nothing. Every other construct here is correctly marked so that
// bare-marker is the single finding.
#include <thread>

void fixture_marked_spawn() {
  // thread-ok: fixture thread, joined right below.
  std::thread t([] {});
  t.join();
}

// bounded-ok:
