// Simulated FFS-VA instance and YOLOv2-only baseline.
//
// The full four-stage pipeline — prefetch/decode, SDD (CPU pool), SNM
// (GPU0, batched, per-stream weights), global T-YOLO (GPU0, round-robin,
// per-stream cap), reference model (GPU1) — executed under virtual time
// with the calibrated cost models of detect/cost_model.hpp. The policy
// objects (DynamicBatcher, TYoloScheduler, FeedbackController semantics via
// bounded SimQueues, AdmissionController) are the production classes from
// core/policies.hpp.
//
// Per-frame filter outcomes come from an OutcomeSource: either a replayed
// real trace or a calibrated Markov generator (sim/outcome.hpp).
#pragma once

#include <functional>
#include <iosfwd>
#include <memory>
#include <string>

#include "core/config.hpp"
#include "detect/cost_model.hpp"
#include "runtime/stats.hpp"
#include "sim/outcome.hpp"

namespace ffsva::telemetry {
class TraceBuffer;
}

namespace ffsva::sim {

struct SimCosts {
  detect::ModelCost sdd = detect::calibrated::sdd();
  detect::ModelCost snm = detect::calibrated::snm();
  detect::ModelCost tyolo = detect::calibrated::tyolo();
  detect::ModelCost ref = detect::calibrated::yolov2();
  double decode_us = detect::calibrated::decode_us_per_frame();
  int cpu_cores = 28;  ///< Dual Xeon E5-2683v3 (Section 5.1).
};

struct SimSetup {
  core::FfsVaConfig config;
  SimCosts costs;
  int num_streams = 1;
  bool online = true;
  /// Online: simulate this much stream time. Offline: ignored.
  double duration_sec = 120.0;
  /// Frames each stream supplies (offline length; online cap).
  std::int64_t frames_per_stream = 5000;
  /// Factory for each stream's per-frame outcomes.
  std::function<std::unique_ptr<OutcomeSource>(int stream)> make_outcomes;

  // --- telemetry (virtual-time) --------------------------------------------
  /// When set, stage completions are recorded as spans with *virtual*
  /// timestamps (lanes: tid 1 = GPU0, 2 = GPU1, 3 = CPU pool). The caller
  /// owns the buffer and must enable() it; export with write_chrome_trace.
  telemetry::TraceBuffer* trace = nullptr;
  /// When set, one metrics JSONL row (same schema as the engine's live
  /// exporter) is appended per metrics_interval_ms of *virtual* time, plus
  /// a final row when the run drains.
  std::ostream* metrics_sink = nullptr;
  int metrics_interval_ms = 100;
  std::string metrics_label;
};

struct SimStreamStats {
  std::int64_t ingested = 0;
  std::int64_t dropped = 0;
  std::int64_t sdd_in = 0, sdd_pass = 0;
  std::int64_t snm_in = 0, snm_pass = 0;
  std::int64_t tyolo_in = 0, tyolo_pass = 0;
  std::int64_t outputs = 0;
  double finish_time_sec = 0.0;  ///< When the stream's last frame terminated.
};

struct SimResult {
  std::vector<SimStreamStats> streams;
  double sim_time_sec = 0.0;

  std::int64_t total_ingested = 0;
  std::int64_t total_dropped = 0;
  std::int64_t total_outputs = 0;

  /// Frames fully processed per second of virtual time (offline throughput).
  double throughput_fps = 0.0;
  /// Fraction of arrived frames dropped at ingest (online overload signal).
  double drop_rate = 0.0;
  /// A stream is "supported in real time" when (almost) nothing is dropped.
  bool realtime = false;

  runtime::Histogram output_latency_ms;    ///< Arrival -> reference output.
  runtime::Histogram terminal_latency_ms;  ///< Arrival -> filtered or output.

  double gpu0_utilization = 0.0;
  double gpu1_utilization = 0.0;
  double cpu_utilization = 0.0;
  double tyolo_service_fps = 0.0;   ///< Mean frames/sec through T-YOLO.
  std::int64_t gpu0_model_switches = 0;
  double mean_snm_batch = 0.0;      ///< Realized average SNM batch size.
};

/// Simulate one FFS-VA instance.
SimResult simulate_ffsva(const SimSetup& setup);

/// Simulate the paper's baseline: every frame of every stream through
/// YOLOv2 on both GPUs (no filtering).
SimResult simulate_baseline(const SimSetup& setup);

/// Binary-search the maximum stream count a configuration sustains in real
/// time (drop rate <= `max_drop_rate`). Figure 3/4/6a's headline metric.
int max_realtime_streams(const SimSetup& base, int lo, int hi,
                         double max_drop_rate = 0.005,
                         bool baseline = false);

}  // namespace ffsva::sim
