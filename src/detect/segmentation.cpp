#include "detect/segmentation.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "image/ops.hpp"
#include "runtime/cancel.hpp"

namespace ffsva::detect {

image::Image motion_map(const image::Image& frame, const image::Image& background) {
  if (!frame.same_shape(background)) {
    throw std::invalid_argument("motion_map: frame/background shape mismatch");
  }
  image::Image out(frame.width(), frame.height(), 1);
  const std::uint8_t* a = frame.data();
  const std::uint8_t* b = background.data();
  std::uint8_t* o = out.data();
  const std::size_t n = static_cast<std::size_t>(frame.width()) * frame.height();
  const int c = frame.channels();
  for (std::size_t i = 0; i < n; ++i) {
    int best = 0;
    for (int ch = 0; ch < c; ++ch) {
      best = std::max(best, std::abs(static_cast<int>(a[i * c + ch]) -
                                     static_cast<int>(b[i * c + ch])));
    }
    o[i] = static_cast<std::uint8_t>(best);
  }
  return out;
}

std::vector<image::Component> foreground_components(const image::Image& frame,
                                                    const image::Image& background,
                                                    const SegmentationParams& params) {
  // Cancellation boundaries between the full-resolution passes: each pass
  // is O(pixels), so a cancelled segmentation unwinds within one pass.
  image::Image diff = motion_map(frame, background);
  runtime::check_cancel();
  if (params.blur_sigma > 0.0) diff = image::gaussian_blur(diff, params.blur_sigma);
  runtime::check_cancel();
  image::Image mask = image::threshold(diff, params.diff_threshold);
  if (params.morph_open) mask = image::dilate3x3(image::erode3x3(mask));
  runtime::check_cancel();
  return image::connected_components(mask, params.min_pixels);
}

Detection classify_component(const image::Component& comp, int frame_w, int frame_h,
                             int min_pixels, const ClassifierParams& params) {
  (void)frame_h;
  Detection d;
  d.box = comp.box;
  d.pixels = comp.pixel_count;
  const double w = comp.box.width();
  const double h = std::max(1, comp.box.height());
  const double aspect = w / h;
  const bool person_shape =
      aspect <= 0.95 ||
      (aspect <= params.person_max_aspect &&
       (params.person_wide_min_area <= 0.0 ||
        comp.pixel_count >= params.person_wide_min_area));
  if (person_shape) {
    d.cls = video::ObjectClass::kPerson;
    if (params.person_split_area > 0.0) {
      d.instances = std::clamp(
          static_cast<int>(std::lround(comp.pixel_count / params.person_split_area)), 1,
          params.max_instances_per_blob);
    }
  } else if (w >= params.bus_min_width_frac * frame_w) {
    d.cls = video::ObjectClass::kBus;
  } else {
    d.cls = video::ObjectClass::kCar;
  }
  // Confidence saturates once the blob carries twice the minimum mass; a
  // blob scraping the floor gets ~0.5.
  d.confidence = std::clamp(
      0.4 + 0.6 * static_cast<double>(comp.pixel_count) / (2.0 * min_pixels), 0.0, 1.0);
  if (d.cls != video::ObjectClass::kPerson && params.car_min_area > 0.0 &&
      comp.pixel_count < params.car_min_area) {
    const double plaus = comp.pixel_count / params.car_min_area;
    d.confidence *= plaus * plaus;
  }
  return d;
}

}  // namespace ffsva::detect
