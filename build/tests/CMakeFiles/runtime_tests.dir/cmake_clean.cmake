file(REMOVE_RECURSE
  "CMakeFiles/runtime_tests.dir/runtime/bounded_queue_test.cpp.o"
  "CMakeFiles/runtime_tests.dir/runtime/bounded_queue_test.cpp.o.d"
  "CMakeFiles/runtime_tests.dir/runtime/rate_limiter_test.cpp.o"
  "CMakeFiles/runtime_tests.dir/runtime/rate_limiter_test.cpp.o.d"
  "CMakeFiles/runtime_tests.dir/runtime/rng_test.cpp.o"
  "CMakeFiles/runtime_tests.dir/runtime/rng_test.cpp.o.d"
  "CMakeFiles/runtime_tests.dir/runtime/spsc_ring_test.cpp.o"
  "CMakeFiles/runtime_tests.dir/runtime/spsc_ring_test.cpp.o.d"
  "CMakeFiles/runtime_tests.dir/runtime/stats_test.cpp.o"
  "CMakeFiles/runtime_tests.dir/runtime/stats_test.cpp.o.d"
  "CMakeFiles/runtime_tests.dir/runtime/stopwatch_test.cpp.o"
  "CMakeFiles/runtime_tests.dir/runtime/stopwatch_test.cpp.o.d"
  "CMakeFiles/runtime_tests.dir/runtime/thread_pool_test.cpp.o"
  "CMakeFiles/runtime_tests.dir/runtime/thread_pool_test.cpp.o.d"
  "runtime_tests"
  "runtime_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
