# Empty compiler generated dependencies file for video_tests.
# This may be replaced when dependencies are built.
