// Frame sources: where the prefetch stage of each stream pipeline pulls
// frames from. Live sources render the synthetic scene on demand (online
// mode: a camera); stored sources decode the delta-RLE bitstream (offline
// mode: a recording), so the prefetch stage pays a real decode cost.
#pragma once

#include <memory>
#include <optional>

#include "video/codec.hpp"
#include "video/scene.hpp"

namespace ffsva::video {

class FrameSource {
 public:
  virtual ~FrameSource() = default;
  /// Next frame in presentation order, or nullopt at end of stream.
  virtual std::optional<Frame> next() = 0;
  /// Total frames this source will yield (for progress/termination).
  virtual std::int64_t total_frames() const = 0;
};

/// Renders frames from a shared scene simulator (a "camera").
class LiveSource final : public FrameSource {
 public:
  LiveSource(std::shared_ptr<const SceneSimulator> sim, int stream_id)
      : sim_(std::move(sim)), stream_id_(stream_id) {}

  std::optional<Frame> next() override {
    if (next_index_ >= sim_->total_frames()) return std::nullopt;
    return sim_->render(next_index_++, stream_id_);
  }

  std::int64_t total_frames() const override { return sim_->total_frames(); }

 private:
  std::shared_ptr<const SceneSimulator> sim_;
  int stream_id_;
  std::int64_t next_index_ = 0;
};

/// Decodes frames from a stored video (a "recording").
class StoredSource final : public FrameSource {
 public:
  StoredSource(std::shared_ptr<const StoredVideo> video, int stream_id)
      : video_(std::move(video)), reader_(*video_, stream_id) {}

  std::optional<Frame> next() override { return reader_.next(); }

  std::int64_t total_frames() const override { return video_->frame_count(); }

 private:
  std::shared_ptr<const StoredVideo> video_;
  VideoReader reader_;
};

}  // namespace ffsva::video
