file(REMOVE_RECURSE
  "CMakeFiles/nn_tests.dir/nn/compress_test.cpp.o"
  "CMakeFiles/nn_tests.dir/nn/compress_test.cpp.o.d"
  "CMakeFiles/nn_tests.dir/nn/gemm_test.cpp.o"
  "CMakeFiles/nn_tests.dir/nn/gemm_test.cpp.o.d"
  "CMakeFiles/nn_tests.dir/nn/gradcheck_test.cpp.o"
  "CMakeFiles/nn_tests.dir/nn/gradcheck_test.cpp.o.d"
  "CMakeFiles/nn_tests.dir/nn/layers_test.cpp.o"
  "CMakeFiles/nn_tests.dir/nn/layers_test.cpp.o.d"
  "CMakeFiles/nn_tests.dir/nn/loss_test.cpp.o"
  "CMakeFiles/nn_tests.dir/nn/loss_test.cpp.o.d"
  "CMakeFiles/nn_tests.dir/nn/tensor_test.cpp.o"
  "CMakeFiles/nn_tests.dir/nn/tensor_test.cpp.o.d"
  "CMakeFiles/nn_tests.dir/nn/training_test.cpp.o"
  "CMakeFiles/nn_tests.dir/nn/training_test.cpp.o.d"
  "nn_tests"
  "nn_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
