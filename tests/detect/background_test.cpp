#include "detect/background.hpp"

#include <gtest/gtest.h>

#include "image/draw.hpp"
#include "image/ops.hpp"
#include "video/profiles.hpp"

namespace ffsva::detect {
namespace {

TEST(BackgroundEstimator, EmptyIsNotReady) {
  BackgroundEstimator bg;
  EXPECT_FALSE(bg.ready());
  EXPECT_TRUE(bg.estimate().empty());
}

TEST(BackgroundEstimator, MedianOfConstantFrames) {
  BackgroundEstimator bg(5);
  for (int i = 0; i < 5; ++i) bg.add(image::Image(8, 8, 3, 100));
  const auto est = bg.estimate();
  EXPECT_EQ(est.at(4, 4, 0), 100);
  EXPECT_EQ(bg.sample_count(), 5);
}

TEST(BackgroundEstimator, MedianRejectsTransientObject) {
  // 7 background frames + 3 frames with a bright object: the median must
  // recover the background value under the object.
  BackgroundEstimator bg(10);
  for (int i = 0; i < 10; ++i) {
    image::Image frame(16, 16, 3, 60);
    if (i % 4 == 0) {  // 3 of 10 frames have the object
      image::fill_rect(frame, image::Box{4, 4, 12, 12}, image::Rgb{240, 240, 240});
    }
    bg.add(frame);
  }
  const auto est = bg.estimate();
  EXPECT_EQ(est.at(8, 8, 0), 60);
}

TEST(BackgroundEstimator, MeanWouldFailWhereMedianSucceeds) {
  // Quantify the robustness argument from the header comment.
  image::Accumulator mean_acc;
  BackgroundEstimator median(10);
  for (int i = 0; i < 10; ++i) {
    image::Image frame(8, 8, 1, 50);
    if (i < 4) image::fill_rect(frame, image::Box{0, 0, 8, 8}, image::Rgb{250, 250, 250});
    mean_acc.add(frame);
    median.add(frame);
  }
  const int mean_err = std::abs(static_cast<int>(mean_acc.mean().at(4, 4)) - 50);
  const int median_err = std::abs(static_cast<int>(median.estimate().at(4, 4)) - 50);
  EXPECT_GT(mean_err, 50);
  EXPECT_LE(median_err, 2);
}

TEST(BackgroundEstimator, BoundedMemoryUnderManyOffers) {
  BackgroundEstimator bg(8);
  for (int i = 0; i < 1000; ++i) bg.add(image::Image(4, 4, 1, static_cast<std::uint8_t>(i % 200)));
  EXPECT_EQ(bg.sample_count(), 8);
  EXPECT_FALSE(bg.estimate().empty());
}

TEST(BackgroundEstimator, RecoversSceneBackground) {
  // On a real simulated stream, the estimate should be close to the true
  // static background away from lighting drift.
  video::SceneConfig cfg = video::jackson_profile();
  cfg.width = 96;
  cfg.height = 72;
  cfg.tor = 0.3;
  cfg.lighting_amp = 0.0;
  cfg.noise_amp = 0.0;
  video::SceneSimulator sim(cfg, 3, 600);
  BackgroundEstimator bg(21);
  for (int i = 0; i < 600; i += 29) bg.add(sim.render(i).image);
  const auto est = bg.estimate();
  const double err = image::sad(est, sim.background());
  EXPECT_LT(err, 4.0) << "mean abs error vs true background";
}

}  // namespace
}  // namespace ffsva::detect
