// Section 5.2 headline — offline analysis of a single stream.
//
// Paper: "the maximum throughput FFS-VA can support is 404 FPS, which is 3x
// that supported by YOLOv2. Compared with YOLOv2 the total execution time
// is reduced by 72.3%. In addition, for a 55 GB video file, the entire
// system uses less than 8 GB CPU memory."
#include "common.hpp"

using namespace ffsva;

int main() {
  bench::print_header("HEADLINE -- offline single-stream throughput (TOR ~= 0.103)");

  std::printf("Specializing stream and recording real-filter trace...\n");
  auto stream = bench::build_stream(video::jackson_profile(), 0.103, 42, 1000, 2000, 6);
  const auto thresholds = core::thresholds_of(stream.models, 1);
  const auto params = sim::MarkovParams::from_trace(stream.trace, thresholds);

  const std::int64_t frames = 10000;
  double base_time = 0.0;
  std::printf("\n%-26s %10s %12s %12s %10s\n", "system", "thr(FPS)", "exec time(s)",
              "mean lat(ms)", "gpu0 util");
  bench::print_rule();
  {
    core::FfsVaConfig cfg;
    const auto r = sim::simulate_baseline(
        bench::sim_setup_from(params, cfg, 1, false, frames));
    base_time = r.sim_time_sec;
    std::printf("%-26s %10.0f %12.1f %12.0f %10s\n", "YOLOv2 (both GPUs)",
                r.throughput_fps, r.sim_time_sec, r.output_latency_ms.mean(), "-");
  }
  for (const auto policy : {core::BatchPolicy::kStatic, core::BatchPolicy::kFeedback,
                            core::BatchPolicy::kDynamic}) {
    core::FfsVaConfig cfg;
    cfg.batch_policy = policy;
    const auto r = sim::simulate_ffsva(
        bench::sim_setup_from(params, cfg, 1, false, frames));
    std::printf("FFS-VA (%-9s batch) %11.0f %12.1f %12.0f %9.2f\n",
                to_string(policy), r.throughput_fps, r.sim_time_sec,
                r.output_latency_ms.mean(), r.gpu0_utilization);
    if (policy == core::BatchPolicy::kFeedback) {
      std::printf("  -> speedup %.2fx over YOLOv2 (paper: 3x); execution time "
                  "reduced by %.1f%% (paper: 72.3%%)\n",
                  base_time / r.sim_time_sec,
                  100.0 * (1.0 - r.sim_time_sec / base_time));
    }
  }

  // Memory: the pipeline holds only bounded queues of frames.
  {
    core::FfsVaConfig cfg;
    const std::size_t frame_bytes =
        static_cast<std::size_t>(stream.cfg.width) * stream.cfg.height * 3;
    const std::size_t in_flight = static_cast<std::size_t>(
        cfg.ingest_buffer + cfg.snm_queue_depth + cfg.tyolo_queue_depth +
        cfg.ref_queue_depth + 2 * cfg.batch_size);
    std::printf("\nBounded frame memory: ~%zu frames in flight x %zu KB/frame "
                "= %.1f MB per stream\n",
                in_flight, frame_bytes / 1024,
                static_cast<double>(in_flight * frame_bytes) / 1e6);
    std::printf("(paper: < 8 GB CPU memory while analyzing a 55 GB file --\n"
                " memory is bounded by queue depths, not by file size)\n");
  }
  return 0;
}
