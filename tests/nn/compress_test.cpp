#include "nn/compress.hpp"

#include <gtest/gtest.h>

#include "nn/loss.hpp"
#include "nn/optim.hpp"

namespace ffsva::nn {
namespace {

std::unique_ptr<Sequential> small_net(std::uint64_t seed) {
  runtime::Xoshiro256 rng(seed);
  auto net = std::make_unique<Sequential>();
  net->add(std::make_unique<Conv2d>(1, 4, 3, 2, 1, rng))
      .add(std::make_unique<ReLU>())
      .add(std::make_unique<Linear>(4 * 5 * 5, 2, rng));
  return net;
}

TEST(Prune, ZeroSparsityIsNoop) {
  auto net = small_net(1);
  const Tensor x(1, 1, 10, 10);
  const auto before = net->forward(const_cast<Tensor&>(x));
  const auto report = prune_by_magnitude(*net, 0.0);
  EXPECT_EQ(report.zeroed, 0u);
  const auto after = net->forward(const_cast<Tensor&>(x));
  for (std::size_t i = 0; i < before.size(); ++i) EXPECT_EQ(before[i], after[i]);
}

TEST(Prune, SparsityIsReached) {
  auto net = small_net(2);
  prune_by_magnitude(*net, 0.5);
  EXPECT_NEAR(sparsity_of(*net), 0.5, 0.05);
  prune_by_magnitude(*net, 0.9);
  EXPECT_NEAR(sparsity_of(*net), 0.9, 0.05);
}

TEST(Prune, FullSparsityZerosEverything) {
  auto net = small_net(3);
  prune_by_magnitude(*net, 1.0);
  EXPECT_NEAR(sparsity_of(*net), 1.0, 0.01);
}

TEST(Prune, RemovesSmallestMagnitudesFirst) {
  runtime::Xoshiro256 rng(4);
  Sequential net;
  net.add(std::make_unique<Linear>(4, 1, rng));
  auto params = net.params();
  Tensor& w = *params[0].value;
  w[0] = 0.01f;
  w[1] = -1.0f;
  w[2] = 0.02f;
  w[3] = 2.0f;
  prune_by_magnitude(net, 0.5);
  EXPECT_EQ(w[0], 0.0f);
  EXPECT_EQ(w[2], 0.0f);
  EXPECT_EQ(w[1], -1.0f);
  EXPECT_EQ(w[3], 2.0f);
}

TEST(Prune, BiasesAreExempt) {
  auto net = small_net(5);
  for (auto p : net->params()) {
    if (p.value->c() * p.value->h() * p.value->w() == 1) p.value->fill(0.123f);
  }
  prune_by_magnitude(*net, 1.0);
  for (auto p : net->params()) {
    if (p.value->c() * p.value->h() * p.value->w() == 1) {
      EXPECT_EQ((*p.value)[0], 0.123f);
    }
  }
}

TEST(Prune, InvalidSparsityThrows) {
  auto net = small_net(6);
  EXPECT_THROW(prune_by_magnitude(*net, -0.1), std::invalid_argument);
  EXPECT_THROW(prune_by_magnitude(*net, 1.1), std::invalid_argument);
}

TEST(Quantize, ErrorBoundedByHalfStep) {
  auto net = small_net(7);
  const double max_abs = [&] {
    double m = 0;
    for (auto p : net->params()) m = std::max(m, p.value->abs_max());
    return m;
  }();
  const auto report = quantize_weights(*net, 8);
  EXPECT_EQ(report.bits, 8);
  // Half a quantization step of the coarsest tensor bounds the error.
  EXPECT_LE(report.max_abs_error, max_abs / 127.0 * 0.5 + 1e-7);
}

TEST(Quantize, MoreBitsMeansLessError) {
  double prev = 1e9;
  for (int bits : {4, 8, 12}) {
    auto net = small_net(8);
    const auto r = quantize_weights(*net, bits);
    EXPECT_LT(r.max_abs_error, prev);
    prev = r.max_abs_error;
  }
}

TEST(Quantize, IdempotentAtSameBits) {
  auto net = small_net(9);
  quantize_weights(*net, 6);
  std::vector<float> snapshot;
  for (auto p : net->params()) {
    for (std::size_t i = 0; i < p.value->size(); ++i) snapshot.push_back((*p.value)[i]);
  }
  const auto r2 = quantize_weights(*net, 6);
  std::size_t k = 0;
  for (auto p : net->params()) {
    for (std::size_t i = 0; i < p.value->size(); ++i) {
      EXPECT_NEAR((*p.value)[i], snapshot[k++], 1e-6);
    }
  }
  EXPECT_LT(r2.max_abs_error, 1e-6);
}

TEST(Quantize, FootprintAccounting) {
  auto net = small_net(10);
  const auto r = quantize_weights(*net, 8);
  EXPECT_GT(r.total_weights, 0u);
  EXPECT_DOUBLE_EQ(r.model_bytes_fp32, static_cast<double>(r.total_weights) * 4);
  EXPECT_LT(r.model_bytes_quant, r.model_bytes_fp32 / 3.0);
}

TEST(Quantize, InvalidBitsThrow) {
  auto net = small_net(11);
  EXPECT_THROW(quantize_weights(*net, 1), std::invalid_argument);
  EXPECT_THROW(quantize_weights(*net, 17), std::invalid_argument);
}

TEST(Compression, TrainedClassifierSurvivesModeratePruning) {
  // Train a blob classifier, then prune 50% and quantize to 8 bits: the
  // Section 5.5 claim is that accuracy survives.
  runtime::Xoshiro256 rng(42);
  Sequential net;
  net.add(std::make_unique<Conv2d>(1, 4, 3, 2, 1, rng))
      .add(std::make_unique<ReLU>())
      .add(std::make_unique<Linear>(4 * 6 * 6, 1, rng));
  const int n = 120;
  std::vector<Tensor> xs;
  std::vector<float> ys;
  for (int i = 0; i < n; ++i) {
    Tensor x(1, 1, 12, 12);
    for (std::size_t j = 0; j < x.size(); ++j) {
      x[j] = static_cast<float>(rng.uniform(0.0, 0.2));
    }
    const bool pos = i % 2 == 0;
    if (pos) {
      const int bx = static_cast<int>(rng.below(8)), by = static_cast<int>(rng.below(8));
      for (int dy = 0; dy < 4; ++dy) {
        for (int dx = 0; dx < 4; ++dx) x.at(0, 0, by + dy, bx + dx) = 0.9f;
      }
    }
    xs.push_back(x);
    ys.push_back(pos ? 1.0f : 0.0f);
  }
  Sgd opt(net.params(), {0.05, 0.9, 1e-4});
  for (int epoch = 0; epoch < 12; ++epoch) {
    for (int i = 0; i < n; ++i) {
      Tensor grad;
      bce_with_logits(net.forward(xs[static_cast<std::size_t>(i)], true),
                      {ys[static_cast<std::size_t>(i)]}, grad);
      net.backward(grad);
      opt.step();
    }
  }
  auto accuracy = [&] {
    int correct = 0;
    for (int i = 0; i < n; ++i) {
      const bool pred = net.forward(xs[static_cast<std::size_t>(i)]).at(0, 0, 0, 0) > 0;
      correct += pred == (ys[static_cast<std::size_t>(i)] > 0.5f);
    }
    return static_cast<double>(correct) / n;
  };
  const double base = accuracy();
  ASSERT_GT(base, 0.9);
  prune_by_magnitude(net, 0.5);
  quantize_weights(net, 8);
  EXPECT_GT(accuracy(), base - 0.08) << "compressed model lost too much accuracy";
}

}  // namespace
}  // namespace ffsva::nn
