#include "nn/tensor.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace ffsva::nn {
namespace {

TEST(Tensor, ShapeAndSize) {
  Tensor t(2, 3, 4, 5);
  EXPECT_EQ(t.n(), 2);
  EXPECT_EQ(t.c(), 3);
  EXPECT_EQ(t.h(), 4);
  EXPECT_EQ(t.w(), 5);
  EXPECT_EQ(t.size(), 120u);
  EXPECT_FALSE(t.empty());
}

TEST(Tensor, DefaultIsEmpty) {
  Tensor t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0u);
}

TEST(Tensor, ZeroInitialized) {
  Tensor t(1, 2, 2, 2);
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, NchwIndexing) {
  Tensor t(2, 2, 3, 4);
  t.at(1, 1, 2, 3) = 42.0f;
  // Linear index: ((n*C + c)*H + h)*W + w = ((1*2+1)*3+2)*4+3 = 47.
  EXPECT_EQ(t[47], 42.0f);
}

TEST(Tensor, ZerosLike) {
  Tensor t(3, 1, 2, 2);
  t.fill(7.0f);
  const Tensor z = Tensor::zeros_like(t);
  EXPECT_TRUE(z.same_shape(t));
  EXPECT_EQ(z.sum(), 0.0);
}

TEST(Tensor, AxpyAndScale) {
  Tensor a(1, 1, 1, 3), b(1, 1, 1, 3);
  a[0] = 1;
  a[1] = 2;
  a[2] = 3;
  b[0] = 10;
  b[1] = 20;
  b[2] = 30;
  a.axpy(0.5f, b);
  EXPECT_FLOAT_EQ(a[0], 6.0f);
  EXPECT_FLOAT_EQ(a[2], 18.0f);
  a.scale(2.0f);
  EXPECT_FLOAT_EQ(a[0], 12.0f);
}

TEST(Tensor, SumAndAbsMax) {
  Tensor t(1, 1, 1, 4);
  t[0] = -5;
  t[1] = 2;
  t[2] = 3;
  t[3] = -1;
  EXPECT_DOUBLE_EQ(t.sum(), -1.0);
  EXPECT_DOUBLE_EQ(t.abs_max(), 5.0);
}

TEST(Tensor, SerializationRoundTrip) {
  Tensor t(2, 1, 3, 3);
  for (std::size_t i = 0; i < t.size(); ++i) t[i] = static_cast<float>(i) * 0.25f;
  std::stringstream ss;
  write_tensor(ss, t);
  Tensor u(2, 1, 3, 3);
  read_tensor_values(ss, u);
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_EQ(u[i], t[i]);
}

TEST(Tensor, LoadShapeMismatchThrows) {
  Tensor t(1, 1, 2, 2);
  std::stringstream ss;
  write_tensor(ss, t);
  Tensor wrong(1, 1, 2, 3);
  EXPECT_THROW(read_tensor_values(ss, wrong), std::runtime_error);
}

TEST(Tensor, LoadTruncatedThrows) {
  Tensor t(1, 1, 4, 4);
  std::stringstream ss;
  write_tensor(ss, t);
  std::string data = ss.str();
  data.resize(data.size() / 2);
  std::stringstream truncated(data);
  Tensor u(1, 1, 4, 4);
  EXPECT_THROW(read_tensor_values(truncated, u), std::runtime_error);
}

}  // namespace
}  // namespace ffsva::nn
