// Cross-stream object-level crop consolidation for the GPU1 reference model
// (Rivas et al., "Object-Level Consolidation" — PAPERS.md).
//
// The cascade's cheap filters already localize the interesting pixels:
// T-YOLO's boxes (and SDD's difference mask behind them) say where the
// candidate objects are, yet the reference model still segments every
// background pixel of every surviving frame. This layer makes the expensive
// model's work proportional to *candidate* area instead of frame area:
//
//  1. candidate boxes are padded (local context for the blur/morphology
//     kernels), clipped, and merged when they overlap — one object, one crop;
//  2. crops from MANY frames (many streams) are shelf-packed into mosaic
//     canvases, every crop separated from its neighbours and the border by
//     a `gutter` of blank pixels;
//  3. a matching background mosaic is built from each crop's own stream
//     background, so one segmentation pass over the canvas pair evaluates
//     every crop against its correct per-stream reference — gutter pixels
//     are identical in both canvases, so no foreground can bridge a seam as
//     long as gutter exceeds the blur radius;
//  4. detected components are mapped back to per-frame native coordinates by
//     pure translation (crops are placed 1:1, never resampled — the
//     mosaic→frame round trip is exact), classified against their own
//     frame's geometry. Segmentation blurs the diff map, so a blob hugging a
//     crop edge bleeds up to the blur radius into the zero gutter; such
//     overhang is clipped back to the blob's placement. Only a component
//     whose centre lands in a gutter is suppressed and counted (a seam
//     artefact, not an object).
//
// Fallback policy: a frame with no candidates, with candidate coverage
// above `coverage_threshold`, or with a crop that cannot fit a canvas is
// detected full-frame through exactly the single-frame code path —
// consolidation never produces a *worse* answer than refusing to
// consolidate. Error isolation is per frame: a full-frame evaluation that
// throws fails only its own slot; a (never observed in practice) mosaic
// segmentation failure fails only the slots packed into that canvas.
//
// Everything here is pure, single-threaded-callable logic over caller-owned
// images; consolidate_detect() spreads mosaic/fallback work across the
// shared compute pool but shares no mutable state between chunks.
#pragma once

#include <vector>

#include "detect/detection.hpp"
#include "detect/reference.hpp"
#include "image/geometry.hpp"
#include "image/image.hpp"

namespace ffsva::detect {

struct CropPackConfig {
  /// Context padding (frame pixels) added around each candidate box before
  /// extraction.
  int pad = 6;
  /// Blank separation between packed crops and to the canvas border. Must
  /// exceed TWICE the segmentation blur radius (~3·blur_sigma each side) or
  /// blur spill from two facing crops could meet mid-gutter and bridge their
  /// blobs into one component. 7 covers the default blur_sigma = 1.0.
  int gutter = 7;
  /// Square mosaic canvas edge.
  int canvas_edge = 256;
  /// Candidate-area fraction of the frame above which packing stops paying
  /// and the frame falls back to one full-frame detect.
  double coverage_threshold = 0.45;
};

/// One frame's consolidation request. `candidates` are boxes in frame
/// coordinates (e.g. the T-YOLO detections that passed the frame); an empty
/// candidate list routes the frame to the full-frame fallback — a frame the
/// cheap filters could not localize must still be fully vetted.
struct CropRequest {
  const image::Image* frame = nullptr;
  const image::Image* background = nullptr;
  std::vector<image::Box> candidates;
};

/// One crop's placement inside a mosaic canvas (1:1, no resampling).
struct CropPlacement {
  int slot = -1;     ///< Index into the request vector.
  image::Box src;    ///< Crop rect in frame coordinates.
  int canvas = 0;    ///< Which mosaic canvas.
  int dx = 0, dy = 0;///< Top-left of the crop inside the canvas.

  image::Box dst() const {
    return image::Box{dx, dy, dx + src.width(), dy + src.height()};
  }
};

struct PackPlan {
  std::vector<CropPlacement> placements;
  std::vector<int> full_frame;  ///< Slots routed to full-frame fallback.
  int num_canvases = 0;
  int canvas_w = 0, canvas_h = 0;
  int channels = 0;                ///< Channel count of the canvases.
  std::vector<double> fill_ratio;  ///< Per canvas: crop pixels / canvas pixels.
  std::vector<int> crops_per_canvas;
};

/// Pad candidate boxes by `pad`, clip to the frame, and merge transitively
/// overlapping boxes until none overlap — one object straddling several
/// candidate boxes becomes one crop. Degenerate (empty after clipping)
/// boxes are dropped.
std::vector<image::Box> consolidate_candidates(std::vector<image::Box> boxes,
                                               int frame_w, int frame_h, int pad);

/// Decide fallbacks and shelf-pack the remaining crops into canvases.
PackPlan plan_pack(const std::vector<CropRequest>& requests,
                   const CropPackConfig& cfg);

/// The rendered mosaic pair per canvas: frame pixels and the matching
/// per-stream background pixels, gutters zero in both.
struct MosaicCanvases {
  std::vector<image::Image> frame;
  std::vector<image::Image> background;
};

MosaicCanvases render_pack(const std::vector<CropRequest>& requests,
                           const PackPlan& plan);

/// Map a mosaic-space box on `canvas` back to frame coordinates. A box
/// centred inside a placement belongs to it; any overhang into the gutter
/// (blur spill of the diff map) is clipped to the placement before the
/// translation. slot == -1 means the box is centred in a gutter and must be
/// suppressed as a seam artefact.
struct MapResult {
  int slot = -1;
  image::Box frame_box;
};

MapResult map_back(const PackPlan& plan, int canvas, const image::Box& mosaic_box);

struct ConsolidatedStats {
  int mosaics = 0;
  int packed_crops = 0;
  int full_frame_fallbacks = 0;
  int seam_suppressed = 0;
  std::vector<double> fill_ratio;     ///< Per mosaic.
  std::vector<int> crops_per_mosaic;  ///< Per mosaic.
};

struct ConsolidatedBatch {
  std::vector<RefBatchItem> items;  ///< Aligned with the request vector.
  ConsolidatedStats stats;
};

/// Run the reference model over a consolidated batch: plan, render, one
/// segmentation per mosaic, map-back + per-frame classification, full-frame
/// fallbacks through the single-frame code path. `cfg` is the deployment's
/// (shared) reference-model configuration — per-stream state enters through
/// each request's background image; segmentation/classifier parameters are
/// assumed homogeneous across the batch, which is how the engine deploys
/// the reference model.
ConsolidatedBatch consolidate_detect(const std::vector<CropRequest>& requests,
                                     const ReferenceConfig& cfg,
                                     const CropPackConfig& pack);

}  // namespace ffsva::detect
