// relaxed-ok: fault counters are statistics read after the workload joins;
// the install/uninstall edge uses acquire/release on the hook pointer.
//
// Deterministic in-model fault injection.
//
// video::FaultInjectingSource wedges the *ingest* side of the engine; this
// hook wedges the *model* side: a stall, latency spike, or throw fired
// inside a forward (SDD distance, SNM predict, T-YOLO detect, reference
// segmentation) at an exact per-stage call index. That is what the
// escalation tests need — "SDD call #5 stalls" is reproducible run over
// run, like the index-pinned `*_at` knobs on FaultInjectingSource, with no
// dependence on thread scheduling.
//
// An injected stall is cooperative: it sleeps in 1 ms slices polling the
// current thread's CancelToken (runtime/cancel.hpp) and unwinds via
// CancelledError when the watchdog cancels the call — exactly the unwind
// path a real wedged kernel takes at its next tile boundary. The stall is
// capped at `duration_ms` so a build without escalation armed (or a unit
// test without an engine) still terminates.
//
// Install/uninstall swing one process-global atomic pointer; the per-call
// cost with no hook installed is a single relaxed load.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

namespace ffsva::detect {

/// Which forward the hook intercepts.
enum class FaultStage : int { kSdd = 0, kSnm = 1, kTyolo = 2, kRef = 3 };
inline constexpr int kFaultStageCount = 4;

const char* to_string(FaultStage stage);

/// One deterministic trigger. Fires on per-stage call indices i >= offset
/// with (i - offset) % period == 0 (period <= 0: only at i == offset), at
/// most max_triggers times.
struct ModelFaultSpec {
  enum class Kind {
    kStall,  ///< sliced sleep up to duration_ms, unwound early by a cancel
    kSleep,  ///< plain latency spike of duration_ms; returns normally
    kThrow,  ///< throws std::runtime_error("injected model fault")
  };

  FaultStage stage = FaultStage::kSnm;
  Kind kind = Kind::kStall;
  std::int64_t offset = 0;
  std::int64_t period = 0;
  int max_triggers = 1;
  int duration_ms = 1000;
};

/// The installable hook. Construct with the trigger plan, install(), run
/// the workload, read the counters. fire() is thread-safe (SDD workers call
/// it concurrently); install/uninstall must not race a workload that is
/// still calling into the hook — uninstall after the engine joined.
class FaultHook {
 public:
  explicit FaultHook(std::vector<ModelFaultSpec> specs);
  ~FaultHook();

  FaultHook(const FaultHook&) = delete;
  FaultHook& operator=(const FaultHook&) = delete;

  /// Make this hook the process-global interceptor (replacing any other).
  void install();
  /// Remove whatever hook is installed.
  static void uninstall();

  /// Model forwards call this at entry; no-op unless a hook is installed.
  static void on_call(FaultStage stage);

  /// Total forward entries seen per stage since install.
  std::int64_t calls(FaultStage stage) const;
  /// Faults actually fired for spec i (clamped to its max_triggers).
  int triggered(std::size_t spec) const;
  /// Injected stalls that were unwound early by a cancel.
  int cancelled_stalls() const {
    return cancelled_stalls_.load(std::memory_order_relaxed);
  }

 private:
  void fire(FaultStage stage);

  const std::vector<ModelFaultSpec> specs_;
  std::array<std::atomic<std::int64_t>, kFaultStageCount> calls_{};
  std::vector<std::atomic<int>> matched_;  // per spec, may overshoot max
  std::atomic<int> cancelled_stalls_{0};
};

}  // namespace ffsva::detect
