// Minimal dense image container.
//
// All FFS-VA filters operate on small raster images: SDD on ~100x100
// grayscale, SNM on 50x50, T-YOLO on a downscaled detector input, the
// reference model on the full frame. We keep a single u8 interleaved
// HWC layout (like a decoded video frame) and convert to float tensors
// only at the NN boundary.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace ffsva::image {

class Image {
 public:
  Image() = default;
  Image(int width, int height, int channels, std::uint8_t fill = 0)
      : w_(width), h_(height), c_(channels),
        data_(static_cast<std::size_t>(width) * height * channels, fill) {
    assert(width >= 0 && height >= 0 && (channels == 1 || channels == 3));
  }

  int width() const { return w_; }
  int height() const { return h_; }
  int channels() const { return c_; }
  bool empty() const { return data_.empty(); }
  std::size_t size_bytes() const { return data_.size(); }

  std::uint8_t* data() { return data_.data(); }
  const std::uint8_t* data() const { return data_.data(); }

  /// Pixel accessors (bounds asserted in debug builds only; the filters are
  /// hot loops).
  std::uint8_t& at(int x, int y, int ch = 0) {
    assert(in_bounds(x, y) && ch < c_);
    return data_[(static_cast<std::size_t>(y) * w_ + x) * c_ + ch];
  }
  std::uint8_t at(int x, int y, int ch = 0) const {
    assert(in_bounds(x, y) && ch < c_);
    return data_[(static_cast<std::size_t>(y) * w_ + x) * c_ + ch];
  }

  bool in_bounds(int x, int y) const { return x >= 0 && x < w_ && y >= 0 && y < h_; }

  void fill(std::uint8_t v) { std::fill(data_.begin(), data_.end(), v); }

  /// Reshape in place, reusing the existing allocation when capacity
  /// allows (the resize-into hot paths depend on this being free for a
  /// repeated geometry). Pixel contents are unspecified after a change.
  void reset(int width, int height, int channels) {
    assert(width >= 0 && height >= 0 && (channels == 1 || channels == 3));
    w_ = width;
    h_ = height;
    c_ = channels;
    data_.resize(static_cast<std::size_t>(width) * height * channels);
  }

  bool same_shape(const Image& o) const {
    return w_ == o.w_ && h_ == o.h_ && c_ == o.c_;
  }

  bool operator==(const Image& o) const {
    return same_shape(o) && data_ == o.data_;
  }

 private:
  int w_ = 0;
  int h_ = 0;
  int c_ = 0;
  std::vector<std::uint8_t> data_;
};

/// Accumulator image of doubles, used to average background frames for the
/// SDD reference image (paper Section 3.2.1: "the reference image is usually
/// computed as the average of dozens of background frames").
class Accumulator {
 public:
  Accumulator() = default;

  /// Adds a frame; all frames must share one shape.
  void add(const Image& img);

  /// Mean image over all added frames. Returns an empty image if none.
  Image mean() const;

  int count() const { return n_; }

 private:
  int w_ = 0, h_ = 0, c_ = 0, n_ = 0;
  std::vector<double> sum_;
};

}  // namespace ffsva::image
