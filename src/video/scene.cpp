#include "video/scene.hpp"

#include <algorithm>
#include <cmath>

#include "image/draw.hpp"

namespace ffsva::video {

namespace {
constexpr double kTwoPi = 6.28318530717958647692;
}

const char* to_string(ObjectClass cls) {
  switch (cls) {
    case ObjectClass::kCar: return "car";
    case ObjectClass::kPerson: return "person";
    case ObjectClass::kBus: return "bus";
  }
  return "?";
}

void ObjectTrack::position(std::int64_t t, double& cx, double& cy) const {
  const double span = static_cast<double>(exit - enter);
  double progress;
  if (stall_start >= 0) {
    // Three-phase path: approach, stall (hold at stall_x), cross.
    if (t < stall_start) {
      const double pre = static_cast<double>(stall_start - enter);
      const double u = pre > 0 ? static_cast<double>(t - enter) / pre : 1.0;
      cx = x_start + u * (stall_x - x_start);
    } else if (t < stall_start + stall_len) {
      cx = stall_x;
    } else {
      const double post = static_cast<double>(exit - (stall_start + stall_len));
      const double u =
          post > 0 ? static_cast<double>(t - (stall_start + stall_len)) / post : 1.0;
      cx = stall_x + u * (x_end - stall_x);
    }
  } else {
    progress = span > 0 ? static_cast<double>(t - enter) / span : 1.0;
    cx = x_start + progress * (x_end - x_start);
  }
  cy = y;
  if (wander_amp > 0.0) {
    cx += wander_amp * std::sin(wander_phase + kTwoPi * static_cast<double>(t) / 90.0);
    cy += 0.6 * wander_amp *
          std::cos(0.7 * wander_phase + kTwoPi * static_cast<double>(t) / 130.0);
  }
}

SceneSimulator::SceneSimulator(const SceneConfig& config, std::uint64_t seed,
                               std::int64_t total_frames)
    : config_(config), total_frames_(std::max<std::int64_t>(total_frames, 1)), seed_(seed) {
  build_background(seed);
  plan_timeline(seed);
  plan_tracks(seed);
}

void SceneSimulator::build_background(std::uint64_t seed) {
  runtime::Xoshiro256 rng(seed * 0x9e37u + 17);
  const int w = config_.width, h = config_.height;
  background_ = image::Image(w, h, 3);

  if (config_.target == ObjectClass::kPerson) {
    // Aquarium-like scene: deep water gradient with rocky floor.
    image::fill_vertical_gradient(background_, image::Rgb{24, 60, 110},
                                  image::Rgb{10, 30, 60});
    for (int i = 0; i < 8; ++i) {
      const int cx = static_cast<int>(rng.below(static_cast<std::uint64_t>(w)));
      const int cy = h - 12 - static_cast<int>(rng.below(18));
      const auto shade = static_cast<std::uint8_t>(40 + rng.below(40));
      image::fill_ellipse(background_, cx, cy, 10 + static_cast<int>(rng.below(14)),
                          5 + static_cast<int>(rng.below(6)),
                          image::Rgb{shade, shade, static_cast<std::uint8_t>(shade + 10)});
    }
  } else {
    // Street scene: sky, buildings strip, road band, sidewalk.
    image::fill_vertical_gradient(background_, image::Rgb{150, 170, 200},
                                  image::Rgb{120, 130, 150});
    const int road_top = static_cast<int>(h * 0.45);
    const int road_bot = static_cast<int>(h * 0.85);
    image::fill_band(background_, static_cast<int>(h * 0.30), road_top,
                     image::Rgb{90, 85, 80});  // building strip
    image::fill_band(background_, road_top, road_bot, image::Rgb{70, 70, 72});
    image::fill_band(background_, road_bot, h, image::Rgb{130, 125, 118});
    // Lane markings.
    const int lane_y = (road_top + road_bot) / 2;
    for (int x = 0; x < w; x += 24) {
      image::fill_rect(background_, image::Box{x, lane_y - 1, x + 10, lane_y + 1},
                       image::Rgb{200, 200, 190});
    }
  }

  // Per-seed static texture so different streams differ even with identical
  // configs (specialized SDD/SNM per stream is the whole point).
  std::uint8_t* p = background_.data();
  const std::size_t n = background_.size_bytes();
  for (std::size_t i = 0; i < n; i += 3) {
    const int d = static_cast<int>(rng.below(9)) - 4;
    for (int ch = 0; ch < 3; ++ch) {
      p[i + ch] = static_cast<std::uint8_t>(
          std::clamp(static_cast<int>(p[i + ch]) + d, 0, 255));
    }
  }
}

void SceneSimulator::plan_timeline(std::uint64_t seed) {
  runtime::Xoshiro256 rng(seed ^ 0xfeedfaceULL);
  intervals_.clear();
  const std::int64_t presence =
      std::llround(std::clamp(config_.tor, 0.0, 1.0) * static_cast<double>(total_frames_));
  if (presence <= 0) return;

  // Choose scene lengths summing to `presence`.
  std::vector<std::int64_t> lens;
  std::int64_t acc = 0;
  while (acc < presence) {
    const double raw = config_.mean_scene_len_frames * (0.4 + 1.2 * rng.uniform());
    std::int64_t len = std::max<std::int64_t>(12, std::llround(raw));
    len = std::min(len, presence - acc);
    // Avoid a trailing sliver; merge into the previous scene instead.
    if (len < 12 && !lens.empty()) {
      lens.back() += len;
    } else {
      lens.push_back(len);
    }
    acc += len;
  }

  // Partition the absence into |lens|+1 gaps with random weights.
  const std::int64_t absence = total_frames_ - presence;
  const std::size_t num_gaps = lens.size() + 1;
  std::vector<double> weights(num_gaps);
  double wsum = 0.0;
  for (auto& wgt : weights) {
    wgt = 0.2 + rng.uniform();
    wsum += wgt;
  }
  std::vector<std::int64_t> gaps(num_gaps);
  std::int64_t gacc = 0;
  for (std::size_t i = 0; i + 1 < num_gaps; ++i) {
    gaps[i] = std::llround(static_cast<double>(absence) * weights[i] / wsum);
    gacc += gaps[i];
  }
  gaps.back() = std::max<std::int64_t>(0, absence - gacc);

  // Lay out: gap0, scene0, gap1, scene1, ...
  std::int64_t cursor = 0;
  for (std::size_t i = 0; i < lens.size(); ++i) {
    cursor += gaps[i];
    SceneInterval iv;
    iv.begin = cursor;
    iv.end = std::min<std::int64_t>(cursor + lens[i], total_frames_);
    // Object count: 1 + geometric(multi_object_bias), capped.
    iv.num_objects = 1;
    while (iv.num_objects < config_.max_objects && rng.chance(config_.multi_object_bias)) {
      ++iv.num_objects;
    }
    if (iv.end > iv.begin) intervals_.push_back(iv);
    cursor = iv.end;
  }
}

double SceneSimulator::planned_tor() const {
  std::int64_t covered = 0;
  for (const auto& iv : intervals_) covered += iv.end - iv.begin;
  return static_cast<double>(covered) / static_cast<double>(total_frames_);
}

void SceneSimulator::plan_tracks(std::uint64_t seed) {
  runtime::Xoshiro256 rng(seed ^ 0xdeadbeefULL);
  tracks_.clear();
  int next_id = 1;
  const int w = config_.width, h = config_.height;
  const int road_top = static_cast<int>(h * 0.45);
  const int road_bot = static_cast<int>(h * 0.85);

  auto make_car = [&](std::int64_t b, std::int64_t e, bool allow_stall) {
    ObjectTrack t;
    t.object_id = next_id++;
    t.cls = rng.chance(0.12) ? ObjectClass::kBus : ObjectClass::kCar;
    t.enter = b;
    t.exit = e;
    const double scale = 0.8 + 0.5 * rng.uniform();
    t.w = static_cast<int>((t.cls == ObjectClass::kBus ? 1.8 : 1.0) * config_.car_w * scale);
    t.h = static_cast<int>((t.cls == ObjectClass::kBus ? 1.5 : 1.0) * config_.car_h * scale);
    const bool ltr = rng.chance(0.5);
    t.x_start = ltr ? -t.w * 0.5 : w + t.w * 0.5;
    t.x_end = ltr ? w + t.w * 0.5 : -t.w * 0.5;
    const int lanes = 3;
    const int lane = static_cast<int>(rng.below(lanes));
    t.y = road_top + (lane + 0.5) * (road_bot - road_top) / lanes;
    t.color = image::Rgb{static_cast<std::uint8_t>(60 + rng.below(180)),
                         static_cast<std::uint8_t>(60 + rng.below(180)),
                         static_cast<std::uint8_t>(60 + rng.below(180))};
    if (allow_stall && rng.chance(config_.stopline_fraction) &&
        e - b > config_.stall_frames + 30) {
      // Stall at the entry edge with only 25-50% of the car inside the
      // frame: the paper's partial-appearance false-negative generator.
      const double vis = 0.25 + 0.25 * rng.uniform();
      t.stall_start = b + 4;
      t.stall_len = std::min<std::int64_t>(config_.stall_frames, e - b - 24);
      t.stall_x = ltr ? (vis * t.w - t.w * 0.5) : (w - vis * t.w + t.w * 0.5);
    }
    tracks_.push_back(t);
  };

  auto make_person = [&](std::int64_t b, std::int64_t e, double cx0, double cy0) {
    ObjectTrack t;
    t.object_id = next_id++;
    t.cls = ObjectClass::kPerson;
    t.enter = b;
    t.exit = e;
    t.h = static_cast<int>(config_.person_h * (0.8 + 0.5 * rng.uniform()));
    t.w = std::max(4, t.h / 2);
    const double drift = 6.0 + 10.0 * rng.uniform();
    t.x_start = cx0 - drift;
    t.x_end = cx0 + drift;
    t.y = cy0;
    t.wander_amp = 2.0 + 3.0 * rng.uniform();
    t.wander_phase = rng.uniform(0.0, kTwoPi);
    t.color = image::Rgb{static_cast<std::uint8_t>(90 + rng.below(160)),
                         static_cast<std::uint8_t>(90 + rng.below(160)),
                         static_cast<std::uint8_t>(90 + rng.below(160))};
    tracks_.push_back(t);
  };

  for (const auto& iv : intervals_) {
    if (config_.target == ObjectClass::kPerson) {
      // A crowd cluster: num_objects persons around a shared center.
      const double cx0 = w * (0.2 + 0.6 * rng.uniform());
      const double cy0 = h * (0.35 + 0.4 * rng.uniform());
      for (int k = 0; k < iv.num_objects; ++k) {
        const double px = cx0 + config_.crowd_sigma * rng.normal();
        const double py = cy0 + 0.6 * config_.crowd_sigma * rng.normal();
        make_person(iv.begin, iv.end,
                    std::clamp(px, w * 0.08, w * 0.92),
                    std::clamp(py, h * 0.25, h * 0.85));
      }
    } else {
      // First car spans the whole interval (guarantees presence); extras
      // cover random sub-spans.
      make_car(iv.begin, iv.end, /*allow_stall=*/true);
      for (int k = 1; k < iv.num_objects; ++k) {
        const std::int64_t len = iv.end - iv.begin;
        const std::int64_t sub = std::max<std::int64_t>(12, len / 2);
        const std::int64_t off =
            static_cast<std::int64_t>(rng.below(static_cast<std::uint64_t>(
                std::max<std::int64_t>(1, len - sub + 1))));
        make_car(iv.begin + off, std::min(iv.begin + off + sub, iv.end),
                 /*allow_stall=*/false);
      }
      // Occasional in-scene distractor (pedestrian on the sidewalk).
      if (rng.chance(config_.distractor_rate)) {
        make_person(iv.begin, iv.end, w * (0.2 + 0.6 * rng.uniform()), h * 0.90);
      }
    }
  }

  // Non-target motion in the gaps ("SDD filters out few frames due to
  // frequent movement and scene changes in the daytime", Fig. 5): fill a
  // portion of each gap with distractor-only activity.
  if (config_.distractor_rate > 0.0) {
    std::int64_t prev_end = 0;
    auto fill_gap = [&](std::int64_t gb, std::int64_t ge) {
      const std::int64_t len = ge - gb;
      if (len < 40) return;
      // Cover roughly half of each sizable gap with a distractor.
      const std::int64_t sub = len / 2;
      const std::int64_t off = static_cast<std::int64_t>(
          rng.below(static_cast<std::uint64_t>(len - sub + 1)));
      if (config_.target == ObjectClass::kPerson) {
        // Distractor in an aquarium stream: a fish-like small ellipse (bus
        // class reused as "other moving thing" is wrong; draw a person-free
        // moving blob as a car-class object of small size).
        ObjectTrack t;
        t.object_id = -1;  // assigned below
        t.cls = ObjectClass::kCar;  // non-target class for a person stream
        t.enter = gb + off;
        t.exit = gb + off + sub;
        t.w = 14;
        t.h = 7;
        const bool ltr = rng.chance(0.5);
        t.x_start = ltr ? -8.0 : w + 8.0;
        t.x_end = ltr ? w + 8.0 : -8.0;
        t.y = h * (0.3 + 0.5 * rng.uniform());
        t.color = image::Rgb{220, 170, 60};
        t.object_id = next_id++;
        tracks_.push_back(t);
      } else {
        make_person(gb + off, gb + off + sub, w * (0.2 + 0.6 * rng.uniform()),
                    h * 0.90);
      }
    };
    for (const auto& iv : intervals_) {
      fill_gap(prev_end, iv.begin);
      prev_end = iv.end;
    }
    fill_gap(prev_end, total_frames_);
  }

  std::stable_sort(tracks_.begin(), tracks_.end(),
                   [](const ObjectTrack& a, const ObjectTrack& b) { return a.y < b.y; });
}

void SceneSimulator::render_object(image::Image& img, const ObjectTrack& track,
                                   std::int64_t t, GroundTruth& gt) const {
  double cx, cy;
  track.position(t, cx, cy);
  const int x0 = static_cast<int>(std::lround(cx - track.w * 0.5));
  const int y0 = static_cast<int>(std::lround(cy - track.h * 0.5));
  const image::Box full{x0, y0, x0 + track.w, y0 + track.h};
  const image::Box vis = full.clip(img.width(), img.height());
  const double frac =
      full.area() > 0 ? static_cast<double>(vis.area()) / static_cast<double>(full.area())
                      : 0.0;
  if (frac <= 0.0) return;

  switch (track.cls) {
    case ObjectClass::kCar:
    case ObjectClass::kBus: {
      image::fill_rect(img, full, track.color);
      // Window strip (darker).
      const image::Box win{full.x0 + track.w / 5, full.y0 + 2,
                           full.x1 - track.w / 5, full.y0 + track.h / 2};
      image::fill_rect(img, win,
                       image::Rgb{static_cast<std::uint8_t>(track.color.r / 3),
                                  static_cast<std::uint8_t>(track.color.g / 3),
                                  static_cast<std::uint8_t>(track.color.b / 3)});
      // Wheels.
      const int wr = std::max(2, track.h / 5);
      image::fill_ellipse(img, full.x0 + track.w / 5, full.y1 - 1, wr, wr,
                          image::Rgb{20, 20, 20});
      image::fill_ellipse(img, full.x1 - track.w / 5, full.y1 - 1, wr, wr,
                          image::Rgb{20, 20, 20});
      break;
    }
    case ObjectClass::kPerson: {
      // Head + torso.
      const int head_r = std::max(2, track.h / 5);
      image::fill_ellipse(img, (full.x0 + full.x1) / 2, full.y0 + head_r, head_r,
                          head_r, image::Rgb{210, 180, 150});
      const image::Box torso{full.x0, full.y0 + 2 * head_r, full.x1, full.y1};
      image::fill_rect(img, torso, track.color);
      break;
    }
  }

  GtObject o;
  o.cls = track.cls;
  o.full_box = full;
  o.visible_box = vis;
  o.visible_fraction = frac;
  o.object_id = track.object_id;
  gt.objects.push_back(o);
}

Frame SceneSimulator::render(std::int64_t index, int stream_id) const {
  Frame f;
  f.image = background_;
  f.stream_id = stream_id;
  f.index = index;
  f.pts_sec = static_cast<double>(index) / config_.fps;

  // Dynamic texture (water shimmer): cheap tiled perturbation of the lower
  // region, re-phased every frame.
  if (config_.dynamic_texture > 0.0) {
    runtime::SplitMix64 sm(seed_ ^ static_cast<std::uint64_t>(index) * 0x2545f491ULL);
    const std::uint64_t off = sm.next();
    std::uint8_t* p = f.image.data();
    const int y_begin = static_cast<int>(config_.height * 0.25);
    const int amp = static_cast<int>(14 * config_.dynamic_texture);
    for (int y = y_begin; y < config_.height; ++y) {
      for (int x = 0; x < config_.width; ++x) {
        const std::uint64_t hsh =
            (static_cast<std::uint64_t>(y) * 0x9e3779b97f4a7c15ULL + x + off);
        const int d = static_cast<int>((hsh >> 32) % (2 * amp + 1)) - amp;
        const std::size_t i = (static_cast<std::size_t>(y) * config_.width + x) * 3;
        for (int ch = 0; ch < 3; ++ch) {
          p[i + ch] =
              static_cast<std::uint8_t>(std::clamp(static_cast<int>(p[i + ch]) + d, 0, 255));
        }
      }
    }
  }

  // Objects (tracks are pre-sorted by y for painter's order).
  for (const auto& tr : tracks_) {
    if (index >= tr.enter && index < tr.exit) render_object(f.image, tr, index, f.gt);
  }

  // Slow lighting drift.
  if (config_.lighting_amp > 0.0) {
    const double gain =
        1.0 + config_.lighting_amp *
                  std::sin(kTwoPi * static_cast<double>(index) /
                           (config_.fps * config_.lighting_period_sec));
    image::apply_gain(f.image, gain);
  }

  // Sensor noise from a tiled table (cheap, deterministic per frame).
  if (config_.noise_amp > 0.0) {
    runtime::SplitMix64 sm(seed_ * 0xc0ffee + static_cast<std::uint64_t>(index));
    const std::uint64_t off = sm.next();
    const int amp = std::max(1, static_cast<int>(config_.noise_amp));
    std::uint8_t* p = f.image.data();
    const std::size_t n = f.image.size_bytes();
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t hsh = (i + off) * 0x9e3779b97f4a7c15ULL;
      const int d = static_cast<int>((hsh >> 40) % (2 * amp + 1)) - amp;
      p[i] = static_cast<std::uint8_t>(std::clamp(static_cast<int>(p[i]) + d, 0, 255));
    }
  }

  return f;
}

}  // namespace ffsva::video
