// Escalation-layer integration tests (DESIGN.md Section 14): deterministic
// in-model wedges (detect::FaultHook) through the full threaded engine. The
// contract under test: a model call stalled past model_call_timeout_ms is
// cancelled by the watchdog and unwinds cooperatively, the wedged frame
// follows the degrade policy (and is poisoned on its second wedge), the
// owning stage restarts under its budget, frame conservation holds through
// every cancellation path, and stop()/run_deadline_ms issued mid-model-call
// return in bounded time instead of waiting out the wedge.
//
// This binary carries the `tsan` and `asan` ctest labels: the watchdog
// cancel / stage restart machinery is exactly the code whose races and
// lifetimes the sanitizers must vet.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "core/pipeline.hpp"
#include "detect/fault_hook.hpp"
#include "runtime/cancel.hpp"
#include "video/profiles.hpp"
#include "video/scene.hpp"

namespace ffsva::core {
namespace {

using detect::FaultHook;
using detect::FaultStage;
using detect::ModelFaultSpec;

struct RecoveryWorld {
  video::SceneConfig cfg;
  detect::StreamModels models;
  std::vector<video::Frame> window;  ///< Pre-rendered eval frames.

  RecoveryWorld() {
    cfg = video::jackson_profile();
    cfg.width = 96;
    cfg.height = 72;
    cfg.tor = 0.4;  // busy: a healthy share of frames reaches the deep stages
    video::SceneSimulator sim(cfg, 23, 460);
    std::vector<video::Frame> calib;
    for (int i = 0; i < 400; ++i) calib.push_back(sim.render(i));
    detect::SpecializeConfig sc;
    sc.target = cfg.target;
    sc.snm.epochs = 3;
    models = detect::specialize_stream(calib, sc, 23);
    // Force every frame through the whole cascade: these tests exercise the
    // escalation machinery at each stage, not the filters' selectivity, so
    // the cheap filters must not starve the deep stages of traffic.
    models.sdd->set_delta(-1.0);
    models.snm->set_thresholds(0.0, 0.0);  // t_pre = 0: every score passes
    for (int i = 400; i < 460; ++i) window.push_back(sim.render(i));
  }
};

RecoveryWorld& world() {
  static auto* w = new RecoveryWorld();
  return *w;
}

/// Replays the shared pre-rendered window as one stream.
class ReplaySource final : public video::FrameSource {
 public:
  ReplaySource(const std::vector<video::Frame>* window, int stream_id)
      : window_(window), stream_id_(stream_id) {}

  std::optional<video::Frame> next() override {
    if (next_ >= window_->size()) return std::nullopt;
    video::Frame f = (*window_)[next_++];
    f.stream_id = stream_id_;
    return f;
  }
  std::int64_t total_frames() const override {
    return static_cast<std::int64_t>(window_->size());
  }

 private:
  const std::vector<video::Frame>* window_;
  int stream_id_;
  std::size_t next_ = 0;
};

/// Cycles the window forever — for the shutdown-latency tests, which must
/// end the run themselves while a wedge is in flight.
class EndlessSource final : public video::FrameSource {
 public:
  EndlessSource(const std::vector<video::Frame>* window, int stream_id)
      : window_(window), stream_id_(stream_id) {}

  std::optional<video::Frame> next() override {
    video::Frame f = (*window_)[static_cast<std::size_t>(i_) % window_->size()];
    f.stream_id = stream_id_;
    f.index = i_++;
    return f;
  }
  std::int64_t total_frames() const override { return -1; }  // unbounded

 private:
  const std::vector<video::Frame>* window_;
  int stream_id_;
  std::int64_t i_ = 0;
};

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// --- FaultHook unit behavior ------------------------------------------------

// Triggers fire at exact per-stage call indices, independent of wall time:
// offset 2, period 3, two triggers means call #2 and call #5 throw and call
// #8 does not.
TEST(FaultHookUnit, TriggersAreDeterministicPerCallIndex) {
  FaultHook hook({ModelFaultSpec{FaultStage::kSnm,
                                 ModelFaultSpec::Kind::kThrow,
                                 /*offset=*/2, /*period=*/3,
                                 /*max_triggers=*/2, /*duration_ms=*/0}});
  hook.install();
  std::vector<int> threw_at;
  for (int i = 0; i < 12; ++i) {
    try {
      FaultHook::on_call(FaultStage::kSnm);
    } catch (const std::runtime_error&) {
      threw_at.push_back(i);
    }
  }
  FaultHook::uninstall();
  EXPECT_EQ(threw_at, (std::vector<int>{2, 5}));
  EXPECT_EQ(hook.calls(FaultStage::kSnm), 12);
  EXPECT_EQ(hook.triggered(0), 2);
}

// A stage the plan does not target is never intercepted.
TEST(FaultHookUnit, OtherStagesAreUntouched) {
  FaultHook hook({ModelFaultSpec{FaultStage::kRef,
                                 ModelFaultSpec::Kind::kThrow,
                                 /*offset=*/0, /*period=*/1,
                                 /*max_triggers=*/100, /*duration_ms=*/0}});
  hook.install();
  for (int i = 0; i < 8; ++i) {
    EXPECT_NO_THROW(FaultHook::on_call(FaultStage::kSdd));
  }
  FaultHook::uninstall();
  EXPECT_EQ(hook.calls(FaultStage::kSdd), 8);
  EXPECT_EQ(hook.triggered(0), 0);
}

// An injected stall is cooperative: a cancel on the calling thread's token
// unwinds it within milliseconds, long before the duration cap.
TEST(FaultHookUnit, StallUnwindsPromptlyOnCancel) {
  FaultHook hook({ModelFaultSpec{FaultStage::kSdd,
                                 ModelFaultSpec::Kind::kStall,
                                 /*offset=*/0, /*period=*/0,
                                 /*max_triggers=*/1, /*duration_ms=*/30'000}});
  hook.install();
  runtime::CancelToken token;
  runtime::ScopedCancelToken install(token);
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    token.cancel();
  });
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_THROW(FaultHook::on_call(FaultStage::kSdd),
               runtime::CancelledError);
  const double elapsed = seconds_since(t0);
  canceller.join();
  FaultHook::uninstall();
  EXPECT_LT(elapsed, 10.0) << "stall ignored the cancel";
  EXPECT_EQ(hook.cancelled_stalls(), 1);
}

// Without a token installed (a run without escalation armed) the stall is
// bounded by its duration cap and returns normally.
TEST(FaultHookUnit, StallWithoutTokenIsCappedByDuration) {
  FaultHook hook({ModelFaultSpec{FaultStage::kSdd,
                                 ModelFaultSpec::Kind::kStall,
                                 /*offset=*/0, /*period=*/0,
                                 /*max_triggers=*/1, /*duration_ms=*/50}});
  hook.install();
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_NO_THROW(FaultHook::on_call(FaultStage::kSdd));
  FaultHook::uninstall();
  EXPECT_GE(seconds_since(t0), 0.04);
  EXPECT_EQ(hook.cancelled_stalls(), 0);
}

// --- Engine escalation ------------------------------------------------------

// The acceptance matrix: 16 streams, each shared stage (an SDD worker, the
// GPU0 executor at both SNM and T-YOLO, the reference thread) wedged at
// least once by a stall far past model_call_timeout_ms. The watchdog must
// cancel every wedge, the stages must restart within their budgets, and
// every stream must still conserve all of its frames (wedged frames
// terminate as degraded drops, never vanish).
TEST(ModelFaultRecovery, SixteenStreamWedgeMatrixConservesFrames) {
  auto& w = world();
  constexpr int kStreams = 16;
  const auto frames = static_cast<std::uint64_t>(w.window.size());
  // Each spec wedges one in-model call at a deterministic per-stage call
  // index; the 30 s duration is far past the 250 ms timeout, so completion
  // proves cancellation (not the cap) ended the stall.
  FaultHook hook({
      ModelFaultSpec{FaultStage::kSdd, ModelFaultSpec::Kind::kStall,
                     /*offset=*/40, /*period=*/0, /*max_triggers=*/1,
                     /*duration_ms=*/30'000},
      ModelFaultSpec{FaultStage::kSnm, ModelFaultSpec::Kind::kStall,
                     /*offset=*/10, /*period=*/0, /*max_triggers=*/1,
                     /*duration_ms=*/30'000},
      ModelFaultSpec{FaultStage::kTyolo, ModelFaultSpec::Kind::kStall,
                     /*offset=*/5, /*period=*/0, /*max_triggers=*/1,
                     /*duration_ms=*/30'000},
      ModelFaultSpec{FaultStage::kRef, ModelFaultSpec::Kind::kStall,
                     /*offset=*/2, /*period=*/0, /*max_triggers=*/1,
                     /*duration_ms=*/30'000},
  });
  hook.install();

  FfsVaConfig cfg;
  cfg.model_call_timeout_ms = 250;
  cfg.degrade_policy = DegradePolicy::kDrop;
  cfg.number_of_objects = 0;  // T-YOLO passes everything: ref sees traffic
  FfsVaInstance instance(cfg);
  for (int s = 0; s < kStreams; ++s) {
    instance.add_stream(std::make_unique<ReplaySource>(&w.window, s),
                        w.models);
  }
  instance.set_output_sink([](const OutputEvent&) {});

  const auto stats = instance.run(/*online=*/false);
  FaultHook::uninstall();

  // Every seeded wedge fired and was unwound by a watchdog cancel.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(hook.triggered(i), 1) << "spec " << i << " never fired";
  }
  EXPECT_GE(hook.cancelled_stalls(), 4);
  EXPECT_GE(stats.health.cancels, 4u);
  EXPECT_GE(stats.health.stage_restarts, 1u);
  EXPECT_EQ(stats.health.quarantined_streams, 0);

  // Conservation: every stream accounts every frame — wedged ones included
  // (they terminate as degraded drops with their latency recorded).
  ASSERT_EQ(stats.streams.size(), static_cast<std::size_t>(kStreams));
  std::uint64_t cancelled_calls = 0;
  for (int s = 0; s < kStreams; ++s) {
    const auto& st = stats.streams[static_cast<std::size_t>(s)];
    EXPECT_EQ(st.prefetch.passed, frames) << "stream " << s;
    EXPECT_EQ(st.latency_ms.count(), frames) << "stream " << s;
    EXPECT_FALSE(st.fault.quarantined) << "stream " << s;
    cancelled_calls += st.fault.cancelled_calls;
  }
  EXPECT_GE(cancelled_calls, 1u);  // cancels attributed to specific streams
  // Time-to-recovery was measured for the restarted stages.
  EXPECT_GE(instance.metrics().histogram("latency.recovery_ms").count(), 1u);
}

// Escalation step three: a frame that wedges a stage twice is poisoned and
// dropped even under kBypass. Stalling every SDD call and every SNM call
// means each frame's first wedge bypasses it downstream and its second
// wedge must poison it — deterministically, for every frame that reaches
// SNM.
TEST(ModelFaultRecovery, SecondWedgePoisonsTheFrameUnderBypass) {
  auto& w = world();
  const auto frames = static_cast<std::uint64_t>(w.window.size());
  FaultHook hook({
      ModelFaultSpec{FaultStage::kSdd, ModelFaultSpec::Kind::kStall,
                     /*offset=*/0, /*period=*/1, /*max_triggers=*/1'000'000,
                     /*duration_ms=*/5'000},
      ModelFaultSpec{FaultStage::kSnm, ModelFaultSpec::Kind::kStall,
                     /*offset=*/0, /*period=*/1, /*max_triggers=*/1'000'000,
                     /*duration_ms=*/5'000},
  });
  hook.install();

  FfsVaConfig cfg;
  cfg.model_call_timeout_ms = 100;
  cfg.degrade_policy = DegradePolicy::kBypass;
  FfsVaInstance instance(cfg);
  instance.add_stream(std::make_unique<ReplaySource>(&w.window, 0), w.models);
  instance.set_output_sink([](const OutputEvent&) {});

  const auto stats = instance.run(/*online=*/false);
  FaultHook::uninstall();

  const auto& st = stats.streams[0];
  EXPECT_EQ(st.prefetch.passed, frames);
  EXPECT_EQ(st.latency_ms.count(), frames);  // poisoned frames still counted
  EXPECT_GE(st.fault.poisoned_frames, 1u);
  EXPECT_GE(stats.health.poisoned_frames, 1u);
  EXPECT_GE(stats.health.cancels, 2u);
}

// stop() issued while a model call is wedged returns in bounded time: the
// watchdog stays alive through the join and cancels the in-flight stall, so
// shutdown never waits out the wedge's 60 s cap.
TEST(ModelFaultRecovery, StopMidModelCallReturnsPromptly) {
  auto& w = world();
  // Recurring stalls: one is in flight at essentially any instant, so
  // stop() always lands mid-wedge.
  FaultHook hook({ModelFaultSpec{FaultStage::kSnm,
                                 ModelFaultSpec::Kind::kStall,
                                 /*offset=*/10, /*period=*/30,
                                 /*max_triggers=*/1'000'000,
                                 /*duration_ms=*/60'000}});
  hook.install();

  FfsVaConfig cfg;
  cfg.model_call_timeout_ms = 250;
  FfsVaInstance instance(cfg);
  for (int s = 0; s < 2; ++s) {
    instance.add_stream(std::make_unique<EndlessSource>(&w.window, s),
                        w.models);
  }
  instance.set_output_sink([](const OutputEvent&) {});

  InstanceStats stats;
  std::thread runner([&] { stats = instance.run(/*online=*/false); });
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  const auto t0 = std::chrono::steady_clock::now();
  instance.stop();
  runner.join();  // bounded by cancellation, not by the 60 s stall cap
  const double shutdown = seconds_since(t0);
  FaultHook::uninstall();

  EXPECT_LT(shutdown, 20.0) << "stop() waited out a wedged model call";
  EXPECT_TRUE(stats.health.stopped);
  EXPECT_GE(stats.health.cancels, 1u);
}

// run_deadline_ms is the same mechanism armed from config: the deadline
// fires stop() from the watchdog, and cancellation bounds the wind-down
// even though a 60 s wedge is in flight.
TEST(ModelFaultRecovery, DeadlineMidModelCallReturnsPromptly) {
  auto& w = world();
  FaultHook hook({ModelFaultSpec{FaultStage::kSnm,
                                 ModelFaultSpec::Kind::kStall,
                                 /*offset=*/10, /*period=*/30,
                                 /*max_triggers=*/1'000'000,
                                 /*duration_ms=*/60'000}});
  hook.install();

  FfsVaConfig cfg;
  cfg.run_deadline_ms = 400;
  cfg.model_call_timeout_ms = 250;
  FfsVaInstance instance(cfg);
  for (int s = 0; s < 2; ++s) {
    instance.add_stream(std::make_unique<EndlessSource>(&w.window, s),
                        w.models);
  }
  instance.set_output_sink([](const OutputEvent&) {});

  const auto t0 = std::chrono::steady_clock::now();
  const auto stats = instance.run(/*online=*/false);  // returns on its own
  const double wall = seconds_since(t0);
  FaultHook::uninstall();

  EXPECT_LT(wall, 30.0) << "deadline waited out a wedged model call";
  EXPECT_TRUE(stats.health.deadline_hit);
  EXPECT_TRUE(stats.health.stopped);
}

}  // namespace
}  // namespace ffsva::core
