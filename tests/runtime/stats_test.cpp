#include "runtime/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "runtime/rng.hpp"

namespace ffsva::runtime {
namespace {

TEST(RunningStats, Basics) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  s.add(2.0);
  s.add(4.0);
  s.add(6.0);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 6.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // sample variance of {2,4,6}
  EXPECT_DOUBLE_EQ(s.sum(), 12.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats a, b, all;
  Xoshiro256 rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(0, 100);
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(5.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 5.0);
}

TEST(Histogram, EmptyQuantilesAreZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.p50(), 0.0);
  EXPECT_EQ(h.p99(), 0.0);
}

TEST(Histogram, SingleValue) {
  Histogram h;
  h.add(42.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.min(), 42.0);
  EXPECT_DOUBLE_EQ(h.max(), 42.0);
  // Bucketed value within ~3% of the true value, clamped to [min, max].
  EXPECT_NEAR(h.p50(), 42.0, 42.0 * 0.04);
  // A single sample pins every quantile exactly (the [min, max] clamp).
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 42.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 42.0);
}

TEST(Histogram, ExtremeQuantilesClampToMinAndMax) {
  Histogram h;
  Xoshiro256 rng(5);
  for (int i = 0; i < 1000; ++i) h.add(rng.uniform(1.0, 100.0));
  // q=0 / q=1 land on the observed extremes up to one bucket's width (~3%),
  // and the [min, max] clamp guarantees they never overshoot the range.
  EXPECT_GE(h.quantile(0.0), h.min());
  EXPECT_LE(h.quantile(0.0), h.min() * 1.04);
  EXPECT_LE(h.quantile(1.0), h.max());
  EXPECT_GE(h.quantile(1.0), h.max() / 1.04);
  // Empty histograms return 0 at the extremes too.
  Histogram e;
  EXPECT_EQ(e.quantile(0.0), 0.0);
  EXPECT_EQ(e.quantile(1.0), 0.0);
}

TEST(Histogram, QuantileAccuracyOnUniform) {
  Histogram h;
  Xoshiro256 rng(99);
  for (int i = 0; i < 100000; ++i) h.add(rng.uniform(0.0, 1000.0));
  EXPECT_NEAR(h.p50(), 500.0, 25.0);
  EXPECT_NEAR(h.p90(), 900.0, 40.0);
  EXPECT_NEAR(h.p99(), 990.0, 45.0);
}

TEST(Histogram, QuantilesMonotone) {
  Histogram h;
  Xoshiro256 rng(3);
  for (int i = 0; i < 10000; ++i) h.add(std::exp(rng.normal()));
  double prev = 0.0;
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    const double v = h.quantile(q);
    EXPECT_GE(v, prev);
    prev = v;
  }
  EXPECT_LE(prev, h.max() + 1e-12);
}

TEST(Histogram, WideDynamicRange) {
  Histogram h;
  h.add(0.001);
  h.add(1.0);
  h.add(1e6);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_NEAR(h.quantile(1.0), 1e6, 1e6 * 0.04);
  EXPECT_LE(h.quantile(0.0), 1.0);
}

TEST(Histogram, MergeAddsCounts) {
  Histogram a, b;
  for (int i = 1; i <= 100; ++i) a.add(i);
  for (int i = 101; i <= 200; ++i) b.add(i);
  a.merge(b);
  EXPECT_EQ(a.count(), 200u);
  EXPECT_NEAR(a.quantile(0.5), 100.0, 10.0);
  EXPECT_DOUBLE_EQ(a.max(), 200.0);
}

TEST(Histogram, SummaryIsHumanReadable) {
  Histogram h;
  h.add(1.0);
  const auto s = h.summary();
  EXPECT_NE(s.find("n=1"), std::string::npos);
  EXPECT_NE(s.find("mean="), std::string::npos);
}

TEST(StageCounters, PassRate) {
  StageCounters c;
  EXPECT_EQ(c.pass_rate(), 0.0);
  c.in = 10;
  c.passed = 4;
  EXPECT_DOUBLE_EQ(c.pass_rate(), 0.4);
  EXPECT_EQ(c.filtered(), 6u);
}

}  // namespace
}  // namespace ffsva::runtime
