#include "runtime/lock_rank.hpp"

#if FFSVA_LOCK_RANK_CHECKS_ENABLED

#include <cstdio>
#include <cstdlib>

namespace ffsva::runtime::lockrank_detail {

namespace {

// Deepest ranked-lock nesting any FFS-VA thread legitimately reaches is 4
// (engine → bench → pool → queue); 32 leaves generous headroom and keeps
// the whole stack in one cache line pair.
constexpr int kMaxHeld = 32;

struct HeldLock {
  std::uint32_t rank;
  const char* name;
};

struct HeldStack {
  HeldLock entries[kMaxHeld];
  int depth = 0;
};

thread_local HeldStack t_held;

[[noreturn]] void die(const char* what, std::uint32_t new_rank,
                      const char* new_name) {
  std::fprintf(stderr,
               "ffsva lock-rank: %s acquiring \"%s\" (rank %u); held stack "
               "(outermost first):\n",
               what, new_name ? new_name : "<unnamed>",
               static_cast<unsigned>(new_rank));
  for (int i = 0; i < t_held.depth; ++i) {
    std::fprintf(stderr, "  [%d] \"%s\" (rank %u)\n", i,
                 t_held.entries[i].name ? t_held.entries[i].name : "<unnamed>",
                 static_cast<unsigned>(t_held.entries[i].rank));
  }
  std::fflush(stderr);
  std::abort();
}

}  // namespace

void acquire(std::uint32_t r, const char* name) {
  if (r == rank::kNone) return;
  HeldStack& s = t_held;
  if (s.depth > 0) {
    const HeldLock& top = s.entries[s.depth - 1];
    if (top.rank >= r) {
      std::fprintf(stderr,
                   "ffsva lock-rank: lock-order inversion: \"%s\" (rank %u) "
                   "acquired while holding \"%s\" (rank %u)\n",
                   name ? name : "<unnamed>", static_cast<unsigned>(r),
                   top.name ? top.name : "<unnamed>",
                   static_cast<unsigned>(top.rank));
      die("inversion", r, name);
    }
  }
  if (s.depth >= kMaxHeld) die("held-stack overflow", r, name);
  s.entries[s.depth++] = HeldLock{r, name};
}

void release(std::uint32_t r, const char* name) noexcept {
  if (r == rank::kNone) return;
  HeldStack& s = t_held;
  // Usually LIFO; search from the top so a UniqueLock::unlock under a
  // later scoped lock still clears the right entry.
  for (int i = s.depth - 1; i >= 0; --i) {
    if (s.entries[i].rank == r && s.entries[i].name == name) {
      for (int j = i; j < s.depth - 1; ++j) s.entries[j] = s.entries[j + 1];
      --s.depth;
      return;
    }
  }
  // Releasing a lock we never saw acquired means the hooks are mispaired.
  std::fprintf(stderr,
               "ffsva lock-rank: release of \"%s\" (rank %u) not on held "
               "stack\n",
               name ? name : "<unnamed>", static_cast<unsigned>(r));
  std::fflush(stderr);
  std::abort();
}

int held_depth() noexcept { return t_held.depth; }

}  // namespace ffsva::runtime::lockrank_detail

#else

// Checks compiled out: translation unit intentionally empty.
namespace ffsva::runtime::lockrank_detail {}

#endif  // FFSVA_LOCK_RANK_CHECKS_ENABLED
