#include "runtime/thread_pool.hpp"

#include <utility>

namespace ffsva::runtime {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

bool ThreadPool::submit(std::function<void()> task) {
  {
    MutexLock lk(mu_);
    if (stopping_) return false;
    tasks_.push_back(std::move(task));
  }
  work_available_.notify_one();
  return true;
}

void ThreadPool::wait_idle() {
  UniqueLock lk(mu_);
  while (!tasks_.empty() || active_ != 0) idle_.wait(lk);
}

void ThreadPool::shutdown() {
  {
    MutexLock lk(mu_);
    if (stopping_) {
      // Already shut down by a previous call; workers may be joined.
    }
    stopping_ = true;
  }
  work_available_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      UniqueLock lk(mu_);
      while (!stopping_ && tasks_.empty()) work_available_.wait(lk);
      if (tasks_.empty()) {
        // stopping_ and drained
        return;
      }
      task = std::move(tasks_.front());
      tasks_.pop_front();
      ++active_;
    }
    task();
    {
      MutexLock lk(mu_);
      --active_;
      if (tasks_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace ffsva::runtime
