#include <gtest/gtest.h>

#include "sim/engine.hpp"

namespace ffsva::sim {
namespace {

TEST(SimQueue, TryPushRespectsCapacity) {
  SimQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));
  EXPECT_EQ(q.depth(), 2u);
}

TEST(SimQueue, PopWaitImmediateWhenAvailable) {
  SimQueue<int> q(4);
  q.try_push(7);
  int got = 0;
  q.pop_wait([&](std::optional<int> v) { got = v.value_or(-1); });
  EXPECT_EQ(got, 7);
  EXPECT_EQ(q.depth(), 0u);
}

TEST(SimQueue, PopWaitParksUntilPush) {
  SimQueue<int> q(4);
  int got = -1;
  q.pop_wait([&](std::optional<int> v) { got = v.value_or(-2); });
  EXPECT_EQ(got, -1);  // parked
  q.try_push(5);
  EXPECT_EQ(got, 5);   // delivered directly, item never rests in the queue
  EXPECT_EQ(q.depth(), 0u);
}

TEST(SimQueue, PushWaitParksUntilSpace) {
  SimQueue<int> q(1);
  q.try_push(1);
  bool resumed = false;
  q.push_wait(2, [&] { resumed = true; });
  EXPECT_FALSE(resumed);
  EXPECT_EQ(q.depth(), 1u);
  int got = 0;
  q.pop_wait([&](std::optional<int> v) { got = *v; });
  EXPECT_EQ(got, 1);
  EXPECT_TRUE(resumed);  // parked producer admitted
  EXPECT_EQ(q.depth(), 1u);
}

TEST(SimQueue, FifoAmongParkedProducers) {
  SimQueue<int> q(1);
  q.try_push(0);
  std::vector<int> resumed;
  q.push_wait(1, [&] { resumed.push_back(1); });
  q.push_wait(2, [&] { resumed.push_back(2); });
  std::vector<int> popped;
  for (int i = 0; i < 3; ++i) {
    q.pop_wait([&](std::optional<int> v) { popped.push_back(*v); });
  }
  EXPECT_EQ(popped, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(resumed, (std::vector<int>{1, 2}));
}

TEST(SimQueue, WaitDepthFiresWhenReached) {
  SimQueue<int> q(8);
  std::size_t seen = 0;
  bool fired = false;
  q.wait_depth(3, [&](std::size_t n) {
    fired = true;
    seen = n;
  });
  q.try_push(1);
  q.try_push(2);
  EXPECT_FALSE(fired);
  q.try_push(3);
  EXPECT_TRUE(fired);
  EXPECT_EQ(seen, 3u);
}

TEST(SimQueue, WaitDepthImmediateWhenAlreadyDeep) {
  SimQueue<int> q(8);
  q.try_push(1);
  bool fired = false;
  q.wait_depth(1, [&](std::size_t) { fired = true; });
  EXPECT_TRUE(fired);
}

TEST(SimQueue, CloseWakesDepthWaitersAndConsumers) {
  SimQueue<int> q(8);
  q.try_push(1);
  std::size_t leftover = 99;
  q.wait_depth(5, [&](std::size_t n) { leftover = n; });
  bool consumer_got_null = false;
  q.close();
  EXPECT_EQ(leftover, 1u);  // woken short on close
  // Drain the remaining item, then end-of-stream.
  int got = 0;
  q.pop_wait([&](std::optional<int> v) { got = v.value_or(-1); });
  EXPECT_EQ(got, 1);
  q.pop_wait([&](std::optional<int> v) { consumer_got_null = !v.has_value(); });
  EXPECT_TRUE(consumer_got_null);
}

TEST(SimQueue, CloseRejectsNewPushes) {
  SimQueue<int> q(4);
  q.close();
  EXPECT_FALSE(q.try_push(1));
}

TEST(SimQueue, PopSomeTakesUpToN) {
  SimQueue<int> q(8);
  for (int i = 0; i < 5; ++i) q.try_push(i);
  const auto got = q.pop_some(3);
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], 0);
  EXPECT_EQ(got[2], 2);
  EXPECT_EQ(q.depth(), 2u);
  EXPECT_EQ(q.pop_some(10).size(), 2u);
  EXPECT_TRUE(q.pop_some(1).empty());
}

TEST(SimQueue, PopSomeAdmitsParkedProducers) {
  SimQueue<int> q(2);
  q.try_push(0);
  q.try_push(1);
  std::vector<int> resumed;
  q.push_wait(2, [&] { resumed.push_back(2); });
  q.push_wait(3, [&] { resumed.push_back(3); });
  const auto got = q.pop_some(2);
  EXPECT_EQ(got.size(), 2u);
  EXPECT_EQ(resumed, (std::vector<int>{2, 3}));
  EXPECT_EQ(q.depth(), 2u);
}

TEST(SimQueue, PushHookFires) {
  SimQueue<int> q(4);
  int hooks = 0;
  q.set_push_hook([&] { ++hooks; });
  q.try_push(1);
  q.try_push(2);
  EXPECT_EQ(hooks, 2);
}

TEST(SimQueue, NoLossThroughMixedOperations) {
  SimQueue<int> q(3);
  std::vector<int> out;
  int pushed = 0;
  auto consume = [&] {
    q.pop_wait([&](std::optional<int> v) {
      if (v) out.push_back(*v);
    });
  };
  for (int round = 0; round < 50; ++round) {
    q.push_wait(pushed++, [] {});
    if (round % 2 == 0) consume();
    if (round % 7 == 0) {
      for (int v : q.pop_some(2)) out.push_back(v);
    }
  }
  while (q.depth() > 0) {
    for (int v : q.pop_some(4)) out.push_back(v);
  }
  // Parked producers at the end still hold their items; flush them by
  // popping (admission happens on pop).
  // All delivered values are distinct and ordered.
  for (std::size_t i = 1; i < out.size(); ++i) EXPECT_EQ(out[i], out[i - 1] + 1);
}

}  // namespace
}  // namespace ffsva::sim
