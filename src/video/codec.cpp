#include "video/codec.hpp"

#include <cassert>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

namespace ffsva::video {

namespace {

void put_varint(std::vector<std::uint8_t>& out, std::size_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

std::size_t get_varint(const std::uint8_t* data, std::size_t size, std::size_t& pos) {
  std::size_t v = 0;
  int shift = 0;
  for (;;) {
    if (pos >= size) throw std::runtime_error("truncated varint in bitstream");
    const std::uint8_t b = data[pos++];
    v |= static_cast<std::size_t>(b & 0x7f) << shift;
    if (!(b & 0x80)) return v;
    shift += 7;
  }
}

// Token stream: 0x00 <varint n>            -> n zero residuals
//               0x01 <varint n> <n bytes>  -> n literal residuals
void rle_encode(std::vector<std::uint8_t>& out, const std::uint8_t* residual,
                std::size_t n) {
  std::size_t i = 0;
  while (i < n) {
    if (residual[i] == 0) {
      std::size_t j = i;
      while (j < n && residual[j] == 0) ++j;
      out.push_back(0x00);
      put_varint(out, j - i);
      i = j;
    } else {
      std::size_t j = i;
      // A literal run ends at a "long enough" zero run; short zero gaps are
      // cheaper to carry as literals than to break the run for.
      while (j < n && !(residual[j] == 0 && j + 3 < n && residual[j + 1] == 0 &&
                        residual[j + 2] == 0 && residual[j + 3] == 0)) {
        ++j;
      }
      out.push_back(0x01);
      put_varint(out, j - i);
      out.insert(out.end(), residual + i, residual + j);
      i = j;
    }
  }
}

void rle_decode_apply(const std::uint8_t* packet, std::size_t packet_size,
                      std::uint8_t* pixels, std::size_t n) {
  std::size_t pos = 0;
  std::size_t i = 0;
  while (pos < packet_size) {
    const std::uint8_t tag = packet[pos++];
    const std::size_t run = get_varint(packet, packet_size, pos);
    if (i + run > n) throw std::runtime_error("residual overruns frame");
    if (tag == 0x00) {
      i += run;  // residual 0: pixels unchanged
    } else if (tag == 0x01) {
      if (pos + run > packet_size) throw std::runtime_error("truncated literal run");
      for (std::size_t k = 0; k < run; ++k) {
        pixels[i + k] = static_cast<std::uint8_t>(pixels[i + k] + packet[pos + k]);
      }
      pos += run;
      i += run;
    } else {
      throw std::runtime_error("bad token tag in bitstream");
    }
  }
  if (i != n) throw std::runtime_error("packet does not cover the frame");
}

// Residual summary of one frame from its reconstruction delta (the pixel
// change a decoder observes: new reconstruction minus the previous one).
// Computed on reconstructions rather than coded bytes so it stays exact
// for keyframes and under the deadzone.
FrameHint summarize_delta(const std::uint8_t* prev, const std::uint8_t* cur,
                          int width, int height, int channels, bool keyframe) {
  FrameHint h;
  h.keyframe = keyframe;
  h.grid_w = (width + kHintBlockEdge - 1) / kHintBlockEdge;
  h.grid_h = (height + kHintBlockEdge - 1) / kHintBlockEdge;
  const std::size_t nblocks = static_cast<std::size_t>(h.grid_w) * h.grid_h;
  std::vector<double> sq(nblocks, 0.0), l1(nblocks, 0.0);
  std::vector<std::size_t> zero(nblocks, 0), count(nblocks, 0);
  double frame_sq = 0.0, frame_l1 = 0.0;
  std::size_t fzero = 0;
  for (int y = 0; y < height; ++y) {
    const std::size_t brow = static_cast<std::size_t>(y / kHintBlockEdge) * h.grid_w;
    const std::size_t row = static_cast<std::size_t>(y) * width * channels;
    for (int x = 0; x < width; ++x) {
      const std::size_t b = brow + static_cast<std::size_t>(x / kHintBlockEdge);
      const std::size_t at = row + static_cast<std::size_t>(x) * channels;
      for (int c = 0; c < channels; ++c) {
        const int d = static_cast<int>(cur[at + c]) - static_cast<int>(prev[at + c]);
        const double dd = static_cast<double>(d) * d;
        sq[b] += dd;
        l1[b] += std::abs(d);
        frame_sq += dd;
        frame_l1 += std::abs(d);
        if (d == 0) {
          ++zero[b];
          ++fzero;
        }
      }
      count[b] += static_cast<std::size_t>(channels);
    }
  }
  h.blocks.resize(nblocks);
  for (std::size_t b = 0; b < nblocks; ++b) {
    const double n = count[b] ? static_cast<double>(count[b]) : 1.0;
    h.blocks[b].energy = static_cast<float>(sq[b] / n);
    h.blocks[b].sad = static_cast<float>(l1[b] / n);
    h.blocks[b].zero_frac = static_cast<float>(static_cast<double>(zero[b]) / n);
  }
  const double n = static_cast<double>(width) * height * channels;
  if (n > 0) {
    h.mse = static_cast<float>(frame_sq / n);
    h.sad = static_cast<float>(frame_l1 / n);
    h.zero_frac = static_cast<float>(static_cast<double>(fzero) / n);
  }
  return h;
}

}  // namespace

float FrameHint::max_block_energy() const {
  float m = 0.0f;
  for (const auto& b : blocks) m = b.energy > m ? b.energy : m;
  return m;
}

StoredVideo StoredVideo::encode(const std::vector<Frame>& frames, int keyframe_interval,
                                int deadzone) {
  StoredVideo v;
  if (frames.empty()) return v;
  v.width_ = frames[0].image.width();
  v.height_ = frames[0].image.height();
  v.channels_ = frames[0].image.channels();
  v.keyframe_interval_ = keyframe_interval < 1 ? 1 : keyframe_interval;

  const std::size_t n = frames[0].image.size_bytes();
  std::vector<std::uint8_t> residual(n);
  // Predict from the *reconstruction*, exactly as the decoder will, so the
  // deadzone never accumulates drift.
  image::Image recon(v.width_, v.height_, v.channels_);  // zero frame
  image::Image prev_recon(v.width_, v.height_, v.channels_);

  for (std::size_t f = 0; f < frames.size(); ++f) {
    const auto& img = frames[f].image;
    if (!img.same_shape(frames[0].image)) {
      throw std::invalid_argument("all frames in a stored video must share one shape");
    }
    const bool key = (f % static_cast<std::size_t>(v.keyframe_interval_)) == 0;
    prev_recon = recon;  // snapshot before any keyframe reset, for the hint
    if (key) recon.fill(0);
    const std::uint8_t* cur = img.data();
    std::uint8_t* rec = recon.data();
    for (std::size_t i = 0; i < n; ++i) {
      const int d = static_cast<int>(cur[i]) - static_cast<int>(rec[i]);
      // Keyframes stay exact so seeks reset any deadzone error.
      if (!key && d != 0 && d >= -deadzone && d <= deadzone) {
        residual[i] = 0;
      } else {
        residual[i] = static_cast<std::uint8_t>(d);
        rec[i] = cur[i];
      }
    }
    v.offsets_.push_back(v.bitstream_.size());
    rle_encode(v.bitstream_, residual.data(), n);
    v.sizes_.push_back(v.bitstream_.size() - v.offsets_.back());
    v.hints_.push_back(summarize_delta(prev_recon.data(), recon.data(), v.width_,
                                       v.height_, v.channels_, key));
    v.gt_.push_back(frames[f].gt);
    v.pts_.push_back(frames[f].pts_sec);
  }
  return v;
}

CodecStats StoredVideo::stats() const {
  CodecStats s;
  s.raw_bytes = static_cast<std::size_t>(width_) * height_ * channels_ * offsets_.size();
  s.encoded_bytes = bitstream_.size();
  return s;
}

VideoReader::VideoReader(const StoredVideo& video, int stream_id)
    : video_(video), stream_id_(stream_id),
      previous_(video.width(), video.height(), video.channels()) {}

void VideoReader::decode_into(std::int64_t index) {
  const bool key = (index % video_.keyframe_interval_) == 0;
  if (key) previous_.fill(0);
  rle_decode_apply(video_.bitstream_.data() + video_.offsets_[static_cast<std::size_t>(index)],
                   video_.sizes_[static_cast<std::size_t>(index)], previous_.data(),
                   previous_.size_bytes());
}

void VideoReader::materialize(std::int64_t index) {
  if (state_index_ == index) return;
  const std::int64_t key = index - (index % video_.keyframe_interval_);
  // Replaying from the live state is valid only when it sits inside the
  // target's own GOP and behind the target; otherwise re-sync at the
  // keyframe (decode_into resets the canvas there, so skipped frames never
  // have to be reconstructed — the predictive chain restarts).
  const std::int64_t from =
      (state_index_ >= key && state_index_ < index) ? state_index_ + 1 : key;
  for (std::int64_t i = from; i <= index; ++i) decode_into(i);
  state_index_ = index;
}

std::optional<Frame> VideoReader::next() {
  if (next_index_ >= video_.frame_count()) return std::nullopt;
  materialize(next_index_);
  Frame f;
  f.image = previous_;
  f.stream_id = stream_id_;
  f.index = next_index_;
  f.pts_sec = video_.pts_[static_cast<std::size_t>(next_index_)];
  f.gt = video_.gt_[static_cast<std::size_t>(next_index_)];
  ++next_index_;
  return f;
}

const FrameHint* VideoReader::peek_hint() const {
  if (next_index_ >= video_.frame_count()) return nullptr;
  return &video_.hints_[static_cast<std::size_t>(next_index_)];
}

bool VideoReader::skip_next() {
  if (next_index_ >= video_.frame_count()) return false;
  ++next_index_;
  return true;
}

void VideoReader::seek(std::int64_t index) {
  if (index < 0 || index >= video_.frame_count()) {
    throw std::out_of_range("seek beyond stored video");
  }
  next_index_ = index;
}

}  // namespace ffsva::video
