// Table 2 — statistics of error frames in 5000 consecutive video frames
// (car detection, TOR ~= 0.25).
//
// Paper:
//   An isolated single error frame                 3
//   2-3 isolated-continuous error frames           5
//   Continuously-error frames less than 30        73
//   Continuously-error frames more than 30       140
//   ... "only about 50 frames out of 5000 are those with actual scene
//   losses"; most long runs come from a partially appeared vehicle waiting
//   at a stop line.
#include "common.hpp"
#include "core/accuracy.hpp"

using namespace ffsva;

int main() {
  bench::print_header("TABLE 2 -- statistics of error frames in 5000 consecutive frames");
  std::printf("Specializing car stream (TOR ~= 0.25) and tracing 5000 frames...\n\n");

  auto s = bench::build_stream(video::jackson_profile(), 0.25, 65, 1500, 5000, 8);
  // Relaxed filtering conditions (Section 3.3): "set the real filtering
  // threshold slightly below the target threshold and forward a little more
  // frames to the follow-up filters" — the operating point under which the
  // paper reports its <2% scene-loss accuracy.
  s.models.snm->set_filter_degree(0.15);
  const auto thresholds = core::thresholds_of(s.models, 1);
  const auto fn = core::false_negative_mask(s.trace, thresholds);
  const auto runs = core::classify_error_runs(fn);
  const auto stats = core::evaluate_trace(s.trace, thresholds);

  std::printf("%-48s %10s %10s\n", "Error frame category", "measured", "paper");
  bench::print_rule();
  std::printf("%-48s %10lld %10d\n", "An isolated single error frame",
              static_cast<long long>(runs.isolated_single), 3);
  std::printf("%-48s %10lld %10d\n", "2-3 isolated-continuous error frames",
              static_cast<long long>(runs.isolated_2_3), 5);
  std::printf("%-48s %10lld %10d\n", "Continuously-error frames less than 30",
              static_cast<long long>(runs.continuous_under_30), 73);
  std::printf("%-48s %10lld %10d\n", "Continuously-error frames more than 30",
              static_cast<long long>(runs.continuous_30_plus), 140);
  bench::print_rule();
  std::printf("%-48s %10lld\n", "Total false-negative frames",
              static_cast<long long>(runs.total()));
  std::printf("%-48s %9.3f%%\n", "Frame-level error rate", 100 * stats.error_rate);

  // Scene-level accuracy: the metric users actually care about (Sec. 3.3).
  const auto pass = core::pass_mask(s.trace, thresholds);
  const auto scene = core::scene_level_accuracy(s.sim->intervals(), pass, s.eval_begin);
  std::printf("%-48s %6d of %d (%.1f%%)\n", "Scenes caught", scene.caught,
              scene.scenes, 100.0 * (1.0 - scene.loss_rate));
  std::printf("(paper: actual scene losses < 2%%)\n");
  return 0;
}
