#include "detect/reference.hpp"

#include <cassert>

#include "runtime/parallel_for.hpp"

namespace ffsva::detect {

DetectionResult ReferenceDetector::detect(const image::Image& frame) const {
  DetectionResult out;
  const auto comps = foreground_components(frame, background_, config_.segmentation);
  out.detections.reserve(comps.size());
  for (const auto& c : comps) {
    out.detections.push_back(classify_component(
        c, frame.width(), frame.height(), config_.segmentation.min_pixels,
        config_.classifier));
  }
  return out;
}

std::vector<RefBatchItem> ReferenceDetector::detect_batch(
    std::span<const image::Image* const> frames) const {
  std::vector<const ReferenceDetector*> detectors(frames.size(), this);
  return ffsva::detect::detect_batch(detectors, frames);
}

std::vector<RefBatchItem> detect_batch(
    std::span<const ReferenceDetector* const> detectors,
    std::span<const image::Image* const> frames) {
  assert(detectors.size() == frames.size());
  std::vector<RefBatchItem> out(frames.size());
  // Grain 1: one frame's full-resolution segmentation dwarfs the fork-join
  // overhead, and batch sizes are small (ref_batch_size). Each index writes
  // only its own slot, so the chunks share no mutable state. Exceptions are
  // captured per frame — parallel_for would otherwise rethrow the first one
  // and abandon the remaining chunks, dropping innocent batch-mates.
  runtime::parallel_for(0, static_cast<std::int64_t>(frames.size()), 1,
                        [&](std::int64_t b, std::int64_t e) {
                          for (std::int64_t i = b; i < e; ++i) {
                            const auto idx = static_cast<std::size_t>(i);
                            try {
                              out[idx].result = detectors[idx]->detect(*frames[idx]);
                            } catch (...) {
                              out[idx].ok = false;
                            }
                          }
                        });
  return out;
}

}  // namespace ffsva::detect
