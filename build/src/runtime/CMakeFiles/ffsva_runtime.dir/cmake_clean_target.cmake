file(REMOVE_RECURSE
  "libffsva_runtime.a"
)
