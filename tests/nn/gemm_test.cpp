#include "nn/gemm.hpp"

#include <gtest/gtest.h>

#include "nn/layers.hpp"

namespace ffsva::nn {
namespace {

Tensor random_tensor(int n, int c, int h, int w, std::uint64_t seed) {
  runtime::Xoshiro256 rng(seed);
  Tensor t(n, c, h, w);
  for (std::size_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  return t;
}

TEST(Gemm, MatchesManualMultiply) {
  // A: 2x3, B: 3x2.
  const float a[] = {1, 2, 3, 4, 5, 6};
  const float b[] = {7, 8, 9, 10, 11, 12};
  float c[4];
  gemm(a, b, c, 2, 3, 2);
  EXPECT_FLOAT_EQ(c[0], 58.0f);   // 1*7+2*9+3*11
  EXPECT_FLOAT_EQ(c[1], 64.0f);   // 1*8+2*10+3*12
  EXPECT_FLOAT_EQ(c[2], 139.0f);  // 4*7+5*9+6*11
  EXPECT_FLOAT_EQ(c[3], 154.0f);
}

TEST(Gemm, IdentityLeavesMatrixUnchanged) {
  const float eye[] = {1, 0, 0, 1};
  const float b[] = {3, 4, 5, 6};
  float c[4];
  gemm(eye, b, c, 2, 2, 2);
  for (int i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(c[i], b[i]);
}

TEST(Im2Col, UnfoldsKnownPattern) {
  // 1x1x2x2 input, kernel 2, stride 1, pad 0 -> single column of 4.
  Tensor x(1, 1, 2, 2);
  x.at(0, 0, 0, 0) = 1;
  x.at(0, 0, 0, 1) = 2;
  x.at(0, 0, 1, 0) = 3;
  x.at(0, 0, 1, 1) = 4;
  std::vector<float> cols;
  im2col(x, 0, 2, 1, 0, 1, 1, cols);
  ASSERT_EQ(cols.size(), 4u);
  EXPECT_FLOAT_EQ(cols[0], 1);
  EXPECT_FLOAT_EQ(cols[1], 2);
  EXPECT_FLOAT_EQ(cols[2], 3);
  EXPECT_FLOAT_EQ(cols[3], 4);
}

TEST(Im2Col, ZeroPaddingFillsBorders) {
  Tensor x(1, 1, 1, 1);
  x.at(0, 0, 0, 0) = 5;
  // kernel 3, pad 1 -> 1x1 output, 9 rows; only the center is nonzero.
  std::vector<float> cols;
  im2col(x, 0, 3, 1, 1, 1, 1, cols);
  ASSERT_EQ(cols.size(), 9u);
  for (int i = 0; i < 9; ++i) {
    EXPECT_FLOAT_EQ(cols[static_cast<std::size_t>(i)], i == 4 ? 5.0f : 0.0f);
  }
}

/// The central property: both convolution paths agree on random inputs
/// across shapes, strides and paddings.
class ConvEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<int, int, int, int, int, int, int>> {};

TEST_P(ConvEquivalenceTest, DirectMatchesIm2Col) {
  const auto [batch, in_ch, out_ch, size, kernel, stride, pad] = GetParam();
  runtime::Xoshiro256 rng(99);
  Conv2d conv(in_ch, out_ch, kernel, stride, pad, rng);
  const Tensor x = random_tensor(batch, in_ch, size, size, 7);

  conv.set_use_im2col(false);
  const Tensor direct = conv.forward(x, false);
  conv.set_use_im2col(true);
  const Tensor lowered = conv.forward(x, false);

  ASSERT_TRUE(direct.same_shape(lowered));
  for (std::size_t i = 0; i < direct.size(); ++i) {
    ASSERT_NEAR(direct[i], lowered[i], 1e-4f) << "element " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConvEquivalenceTest,
    ::testing::Values(std::make_tuple(1, 1, 1, 5, 3, 1, 1),
                      std::make_tuple(2, 3, 4, 8, 3, 1, 1),
                      std::make_tuple(1, 1, 8, 50, 3, 2, 1),
                      std::make_tuple(3, 8, 16, 25, 3, 2, 1),
                      std::make_tuple(1, 2, 2, 7, 5, 1, 2),
                      std::make_tuple(2, 4, 4, 9, 3, 3, 0),
                      std::make_tuple(1, 1, 1, 4, 1, 1, 0)));

TEST(ConvIm2Col, TrainingCachesInputForBackward) {
  // With im2col forward, backward must still see the cached input.
  runtime::Xoshiro256 rng(4);
  Conv2d conv(1, 2, 3, 1, 1, rng);
  const Tensor x = random_tensor(1, 1, 6, 6, 5);
  const Tensor y = conv.forward(x, /*train=*/true);
  Tensor g = Tensor::zeros_like(y);
  g.fill(1.0f);
  const Tensor gin = conv.backward(g);
  EXPECT_TRUE(gin.same_shape(x));
  EXPECT_GT(conv.weight_grad.abs_max(), 0.0);
}

TEST(ConvIm2Col, ChannelMismatchThrows) {
  Tensor x(1, 2, 4, 4);
  Tensor w(1, 3, 3, 3);
  Tensor b(1, 1, 1, 1);
  EXPECT_THROW(conv2d_im2col(x, w, b, 1, 1), std::invalid_argument);
}

TEST(Gemm, SkipsZeroWeights) {
  // Behavioural check of the pruning fast path: result identical with
  // zeros present.
  const float a[] = {0, 2, 0, 4};
  const float b[] = {1, 2, 3, 4};
  float c[4];
  gemm(a, b, c, 2, 2, 2);
  EXPECT_FLOAT_EQ(c[0], 6.0f);
  EXPECT_FLOAT_EQ(c[1], 8.0f);
  EXPECT_FLOAT_EQ(c[2], 12.0f);
  EXPECT_FLOAT_EQ(c[3], 16.0f);
}

}  // namespace
}  // namespace ffsva::nn
