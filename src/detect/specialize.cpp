#include "detect/specialize.hpp"

#include <algorithm>
#include <stdexcept>

#include "image/ops.hpp"

namespace ffsva::detect {

StreamModels specialize_stream(const std::vector<video::Frame>& calibration_frames,
                               const SpecializeConfig& config, std::uint64_t seed) {
  if (calibration_frames.size() < 10) {
    throw std::invalid_argument("specialize_stream: need a calibration window");
  }
  StreamModels m;
  m.target = config.target;

  // 1. Background: per-pixel temporal median across the window.
  BackgroundEstimator bg(config.background_samples);
  const std::size_t stride =
      std::max<std::size_t>(1, calibration_frames.size() /
                                   static_cast<std::size_t>(config.background_samples));
  for (std::size_t i = 0; i < calibration_frames.size(); i += stride) {
    bg.add(calibration_frames[i].image);
  }
  m.background = bg.estimate();

  // 2. Reference model for this viewpoint. For person streams the
  // classifier is tuned to the scene first: a probe pass with the generic
  // aspect rule finds clearly-isolated person blobs, whose median mass then
  // (a) lets merged crowd blobs be recognized as multi-person (wider aspect
  // allowance + mass-based instance counting) in both the reference model
  // and T-YOLO, and (b) scales down to T-YOLO's coarse input. This mirrors
  // the paper's per-stream specialization: thresholds are selected per
  // camera from labeled data (Section 4.1).
  ReferenceConfig ref_cfg = config.reference;
  TYoloConfig tyolo_cfg = config.tyolo;
  if (config.target == video::ObjectClass::kPerson) {
    const ReferenceDetector probe(config.reference, m.background);
    std::vector<int> singleton_areas;
    const std::size_t probe_stride =
        std::max<std::size_t>(1, calibration_frames.size() / 200);
    for (std::size_t i = 0; i < calibration_frames.size(); i += probe_stride) {
      for (const auto& d : probe.detect(calibration_frames[i].image).detections) {
        const double aspect =
            static_cast<double>(d.box.width()) / std::max(1, d.box.height());
        if (d.cls == video::ObjectClass::kPerson && aspect <= 0.8) {
          singleton_areas.push_back(d.pixels);
        }
      }
    }
    double person_area = 120.0;  // fallback for a degenerate window
    if (!singleton_areas.empty()) {
      auto mid = singleton_areas.begin() +
                 static_cast<std::ptrdiff_t>(singleton_areas.size() / 2);
      std::nth_element(singleton_areas.begin(), mid, singleton_areas.end());
      person_area = *mid;
    }
    ref_cfg.classifier.person_max_aspect = 2.2;
    ref_cfg.classifier.person_split_area = person_area;
    ref_cfg.classifier.person_wide_min_area = 1.2 * person_area;

    // Measure the coarse-resolution singleton mass directly at T-YOLO's own
    // input size and segmentation: downscaling and blur change blob mass
    // non-linearly, so an analytic area rescale systematically mis-counts.
    std::vector<int> coarse_areas;
    {
      const int in = tyolo_cfg.input_size;
      const image::Image bg_small = image::resize_bilinear(m.background, in, in);
      for (std::size_t i = 0; i < calibration_frames.size(); i += probe_stride) {
        const image::Image frame_small =
            image::resize_bilinear(calibration_frames[i].image, in, in);
        for (const auto& comp :
             foreground_components(frame_small, bg_small, tyolo_cfg.segmentation)) {
          const double aspect = static_cast<double>(comp.box.width()) /
                                std::max(1, comp.box.height());
          if (aspect <= 0.8) coarse_areas.push_back(comp.pixel_count);
        }
      }
    }
    double coarse_person_area = std::max(
        4.0, person_area * (static_cast<double>(tyolo_cfg.input_size) *
                            tyolo_cfg.input_size) /
                 (static_cast<double>(calibration_frames.front().image.width()) *
                  calibration_frames.front().image.height()));
    if (!coarse_areas.empty()) {
      auto mid = coarse_areas.begin() +
                 static_cast<std::ptrdiff_t>(coarse_areas.size() / 2);
      std::nth_element(coarse_areas.begin(), mid, coarse_areas.end());
      coarse_person_area = std::max(4.0, static_cast<double>(*mid));
    }
    tyolo_cfg.classifier.person_max_aspect = 2.2;
    tyolo_cfg.classifier.person_split_area = coarse_person_area;
    tyolo_cfg.classifier.person_wide_min_area = 1.2 * coarse_person_area;
  } else {
    // Car/bus stream: narrow blobs are pedestrian distractors. The
    // full-resolution reference model keeps a tighter person rule (a
    // partially visible vehicle at a stop line reads as a squarish blob the
    // way YOLOv2 still recognizes as a vehicle), while coarse T-YOLO keeps
    // the generic rule — which is exactly the fidelity gap behind the
    // paper's long false-negative runs (Section 5.3.3, Table 2).
    ref_cfg.classifier.person_max_aspect = 0.70;
    tyolo_cfg.classifier.person_max_aspect = 0.8;
  }

  m.reference = std::make_shared<ReferenceDetector>(ref_cfg, m.background);
  std::vector<bool> labels;
  labels.reserve(calibration_frames.size());
  int positives = 0;
  for (const auto& f : calibration_frames) {
    const bool has = m.reference->detect(f.image).any_target(
        config.target, ref_cfg.confidence_threshold);
    labels.push_back(has);
    positives += has ? 1 : 0;
  }
  m.label_positive_rate =
      static_cast<double>(positives) / static_cast<double>(calibration_frames.size());

  // 3. SDD: distances against the background, threshold from the labels.
  m.sdd = std::make_shared<SddFilter>(config.sdd, m.background);
  {
    std::vector<double> distances;
    distances.reserve(calibration_frames.size());
    for (const auto& f : calibration_frames) distances.push_back(m.sdd->distance(f.image));
    m.sdd_delta = m.sdd->calibrate(distances, labels);
  }

  // 4. SNM: train the 3-layer CNN on (frame, label); thresholds selected on
  // the held-out split inside train().
  m.snm = std::make_shared<SnmFilter>(config.snm, m.background, seed);
  m.snm_report = m.snm->train(calibration_frames, labels);

  // 5. T-YOLO view of this stream (shared executable, per-stream scene).
  m.tyolo = std::make_shared<TYoloDetector>(tyolo_cfg, m.background);

  return m;
}

}  // namespace ffsva::detect
