// Seeded violation for ffsva_lint --self-test: an unmarked std::deque
// member looking exactly like an unbounded inter-thread channel.
#pragma once
#include <deque>
#include <mutex>

struct FixtureChannel {
  std::mutex mu;
  std::deque<int> inbox;
};
