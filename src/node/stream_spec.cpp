#include "node/stream_spec.hpp"

#include <sstream>
#include <vector>

#include "runtime/binary_io.hpp"
#include "video/profiles.hpp"

namespace ffsva::node {

const char* to_string(Profile p) {
  switch (p) {
    case Profile::kJackson: return "jackson";
    case Profile::kCoral: return "coral";
  }
  return "?";
}

std::string StreamSpec::serialize() const {
  std::ostringstream os;
  const auto prof = static_cast<std::uint8_t>(profile);
  runtime::write_pod(os, &stream_id);
  runtime::write_pod(os, &prof);
  runtime::write_pod(os, &tor);
  runtime::write_pod(os, &seed);
  runtime::write_pod(os, &calib_frames);
  runtime::write_pod(os, &begin);
  runtime::write_pod(os, &end);
  runtime::write_pod(os, &snm_epochs);
  runtime::write_pod(os, &width);
  runtime::write_pod(os, &height);
  return std::move(os).str();
}

std::optional<StreamSpec> StreamSpec::parse(std::string_view payload) {
  std::istringstream is{std::string(payload)};
  StreamSpec s;
  std::uint8_t prof = 0;
  if (!runtime::read_pod(is, &s.stream_id) || !runtime::read_pod(is, &prof) ||
      !runtime::read_pod(is, &s.tor) || !runtime::read_pod(is, &s.seed) ||
      !runtime::read_pod(is, &s.calib_frames) ||
      !runtime::read_pod(is, &s.begin) || !runtime::read_pod(is, &s.end) ||
      !runtime::read_pod(is, &s.snm_epochs) ||
      !runtime::read_pod(is, &s.width) || !runtime::read_pod(is, &s.height)) {
    return std::nullopt;
  }
  if (prof > static_cast<std::uint8_t>(Profile::kCoral)) return std::nullopt;
  s.profile = static_cast<Profile>(prof);
  if (s.begin < s.calib_frames || s.end < s.begin) return std::nullopt;
  return s;
}

video::SceneConfig StreamSpec::scene() const {
  video::SceneConfig cfg = profile == Profile::kCoral ? video::coral_profile()
                                                      : video::jackson_profile();
  cfg = video::with_tor(std::move(cfg), tor);
  if (width > 0) cfg.width = width;
  if (height > 0) cfg.height = height;
  return cfg;
}

MaterializedStream materialize(const StreamSpec& spec) {
  const video::SceneConfig cfg = spec.scene();
  // The simulator always spans the full timeline [0, end): a resumed spec
  // (begin > calib_frames) must plan the same scene intervals as the
  // original, or the served frames would diverge from the source node's.
  auto sim = std::make_shared<const video::SceneSimulator>(
      cfg, spec.seed, static_cast<std::int64_t>(spec.end));

  std::vector<video::Frame> calib;
  calib.reserve(spec.calib_frames);
  for (std::uint32_t i = 0; i < spec.calib_frames; ++i) {
    calib.push_back(sim->render(static_cast<std::int64_t>(i),
                                static_cast<int>(spec.stream_id)));
  }
  detect::SpecializeConfig sc;
  sc.target = cfg.target;
  sc.snm.epochs = static_cast<int>(spec.snm_epochs);
  MaterializedStream m;
  m.models = detect::specialize_stream(calib, sc, spec.seed);
  m.source = std::make_unique<WindowSource>(
      std::move(sim), static_cast<int>(spec.stream_id),
      static_cast<std::int64_t>(spec.begin),
      static_cast<std::int64_t>(spec.end));
  return m;
}

}  // namespace ffsva::node
