// StreamSpec: the self-contained, wire-serializable description of one
// video stream's work (DESIGN.md §15). A node that receives a spec can
// *materialize* it — rebuild the scene simulator, re-render the calibration
// window, re-run specialization — and obtain bit-identical per-stream
// models and frames to every other node holding the same spec, because the
// whole chain (SceneSimulator, specialize_stream) is deterministic in
// (profile, tor, seed, sizes). That determinism is what makes a hand-off a
// pure cursor move: the receiving node resumes rendering at `begin` and the
// per-frame pass/fail verdicts continue exactly where the source node
// stopped.
//
// Frame indexing is absolute over one shared simulator timeline:
//   [0, calib_frames)      calibration window (never served)
//   [begin, end)           the serving window; the initial assignment has
//                          begin == calib_frames, and a resumed assignment
//                          has begin == the source node's ingest cursor.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "detect/specialize.hpp"
#include "video/scene.hpp"
#include "video/source.hpp"

namespace ffsva::node {

enum class Profile : std::uint8_t { kJackson = 0, kCoral = 1 };

const char* to_string(Profile p);

struct StreamSpec {
  std::uint32_t stream_id = 0;  ///< Cluster-global id (never engine-local).
  Profile profile = Profile::kJackson;
  double tor = 0.10;
  std::uint64_t seed = 1;
  std::uint32_t calib_frames = 30;
  std::uint64_t begin = 0;  ///< First serving frame (absolute sim index).
  std::uint64_t end = 0;    ///< One past the last serving frame.
  std::uint32_t snm_epochs = 2;
  /// Frame-size overrides; 0 keeps the profile's default. Tests and the
  /// smoke harness shrink frames to keep specialization cheap.
  std::uint16_t width = 0;
  std::uint16_t height = 0;

  /// Fixed-width field-by-field binary encoding (runtime/binary_io.hpp).
  std::string serialize() const;
  static std::optional<StreamSpec> parse(std::string_view payload);

  /// The scene this spec describes (profile + tor + size overrides applied).
  video::SceneConfig scene() const;
};

/// Serves the spec's [begin, end) window off a shared simulator; frames
/// carry the cluster-global stream id and their absolute index, so results
/// from different nodes merge without translation.
class WindowSource final : public video::FrameSource {
 public:
  WindowSource(std::shared_ptr<const video::SceneSimulator> sim, int stream_id,
               std::int64_t begin, std::int64_t end)
      : sim_(std::move(sim)), stream_id_(stream_id), next_(begin), end_(end),
        begin_(begin) {}

  std::optional<video::Frame> next() override {
    if (next_ >= end_) return std::nullopt;
    return sim_->render(next_++, stream_id_);
  }
  std::int64_t total_frames() const override { return end_ - begin_; }

 private:
  std::shared_ptr<const video::SceneSimulator> sim_;
  int stream_id_;
  std::int64_t next_;
  std::int64_t end_;
  std::int64_t begin_;
};

/// Everything FfsVaInstance::add_stream needs for one spec.
struct MaterializedStream {
  detect::StreamModels models;
  std::unique_ptr<video::FrameSource> source;
};

/// Deterministically rebuild the stream: render the calibration window,
/// specialize the models, and open a WindowSource over [begin, end).
/// Identical specs materialize identically on every node.
MaterializedStream materialize(const StreamSpec& spec);

}  // namespace ffsva::node
