
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/nn/compress_test.cpp" "tests/CMakeFiles/nn_tests.dir/nn/compress_test.cpp.o" "gcc" "tests/CMakeFiles/nn_tests.dir/nn/compress_test.cpp.o.d"
  "/root/repo/tests/nn/gemm_test.cpp" "tests/CMakeFiles/nn_tests.dir/nn/gemm_test.cpp.o" "gcc" "tests/CMakeFiles/nn_tests.dir/nn/gemm_test.cpp.o.d"
  "/root/repo/tests/nn/gradcheck_test.cpp" "tests/CMakeFiles/nn_tests.dir/nn/gradcheck_test.cpp.o" "gcc" "tests/CMakeFiles/nn_tests.dir/nn/gradcheck_test.cpp.o.d"
  "/root/repo/tests/nn/layers_test.cpp" "tests/CMakeFiles/nn_tests.dir/nn/layers_test.cpp.o" "gcc" "tests/CMakeFiles/nn_tests.dir/nn/layers_test.cpp.o.d"
  "/root/repo/tests/nn/loss_test.cpp" "tests/CMakeFiles/nn_tests.dir/nn/loss_test.cpp.o" "gcc" "tests/CMakeFiles/nn_tests.dir/nn/loss_test.cpp.o.d"
  "/root/repo/tests/nn/tensor_test.cpp" "tests/CMakeFiles/nn_tests.dir/nn/tensor_test.cpp.o" "gcc" "tests/CMakeFiles/nn_tests.dir/nn/tensor_test.cpp.o.d"
  "/root/repo/tests/nn/training_test.cpp" "tests/CMakeFiles/nn_tests.dir/nn/training_test.cpp.o" "gcc" "tests/CMakeFiles/nn_tests.dir/nn/training_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ffsva_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ffsva_core.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/ffsva_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/video/CMakeFiles/ffsva_video.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/ffsva_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/ffsva_image.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/ffsva_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
