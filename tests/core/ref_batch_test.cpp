// GPU1 reference-stage batching in the live engine: RefMode::kBatch must be
// output-equivalent to RefMode::kSingle (same frames, same per-stream order,
// same detections), a frame the reference model cannot evaluate must be
// dropped alone (per-frame drop-on-error inside a batch), the drop-latency
// fix must keep dropped frames out of the output-latency distribution, and
// RefMode::kCropPack must agree with the single-frame oracle on the frames
// it emits. Runs under the tsan/asan labels — the batched reference loop and
// its cross-stream buffers are new concurrency surface.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "core/pipeline.hpp"
#include "video/profiles.hpp"

namespace ffsva::core {
namespace {

struct TestStream {
  video::SceneConfig cfg;
  std::shared_ptr<video::SceneSimulator> sim;
  detect::StreamModels models;
};

/// One specialized small stream, shared across tests (training is slow).
TestStream& shared_stream() {
  static auto* t = [] {
    auto* s = new TestStream;
    s->cfg = video::jackson_profile();
    s->cfg.width = 128;
    s->cfg.height = 96;
    s->cfg.tor = 0.35;
    s->sim = std::make_shared<video::SceneSimulator>(s->cfg, 91, 1400);
    std::vector<video::Frame> calib;
    for (int i = 0; i < 700; ++i) calib.push_back(s->sim->render(i));
    detect::SpecializeConfig sc;
    sc.target = s->cfg.target;
    sc.snm.epochs = 5;
    s->models = detect::specialize_stream(calib, sc, 91);
    return s;
  }();
  return *t;
}

class WindowSource final : public video::FrameSource {
 public:
  WindowSource(std::shared_ptr<const video::SceneSimulator> sim, int stream_id,
               std::int64_t begin, std::int64_t end)
      : sim_(std::move(sim)), stream_id_(stream_id), next_(begin), end_(end) {}

  std::optional<video::Frame> next() override {
    if (next_ >= end_) return std::nullopt;
    return sim_->render(next_++, stream_id_);
  }
  std::int64_t total_frames() const override { return end_; }

 private:
  std::shared_ptr<const video::SceneSimulator> sim_;
  int stream_id_;
  std::int64_t next_, end_;
};

/// WindowSource that truncates every `period`-th frame by two rows. The
/// cheap filters all downscale to fixed detector inputs, so a truncated
/// frame rides the cascade normally — and throws (shape mismatch against
/// the full-resolution background) exactly at the reference model. That is
/// the in-engine probe for per-frame drop-on-error inside a batch.
class TruncatingSource final : public video::FrameSource {
 public:
  TruncatingSource(std::shared_ptr<const video::SceneSimulator> sim,
                   std::int64_t begin, std::int64_t end, int period)
      : sim_(std::move(sim)), next_(begin), end_(end), period_(period) {}

  std::optional<video::Frame> next() override {
    if (next_ >= end_) return std::nullopt;
    auto f = sim_->render(next_);
    if (next_ % period_ == 0) {
      const auto& src = f.image;
      image::Image cut(src.width(), src.height() - 2, src.channels());
      for (int y = 0; y < cut.height(); ++y) {
        for (int x = 0; x < cut.width(); ++x) {
          for (int c = 0; c < cut.channels(); ++c) {
            cut.at(x, y, c) = src.at(x, y, c);
          }
        }
      }
      f.image = std::move(cut);
    }
    ++next_;
    return f;
  }
  std::int64_t total_frames() const override { return end_; }

 private:
  std::shared_ptr<const video::SceneSimulator> sim_;
  std::int64_t next_, end_;
  int period_;
};

struct RunResult {
  std::vector<std::pair<int, std::int64_t>> outputs;  ///< (stream, index) in order
  std::vector<detect::DetectionResult> results;
  InstanceStats stats;
  std::uint64_t drop_hist_count = 0;
  std::uint64_t output_hist_count = 0;
  std::uint64_t ref_batches = 0;
};

RunResult run_window(RefMode mode, int streams, std::int64_t begin,
                     std::int64_t end, bool truncate = false) {
  auto& s = shared_stream();
  FfsVaConfig cfg;
  cfg.ref_mode = mode;
  cfg.ref_batch_size = 6;
  if (truncate) cfg.degrade_policy = DegradePolicy::kBypass;
  FfsVaInstance instance(cfg);
  const std::int64_t span = (end - begin) / streams;
  for (int i = 0; i < streams; ++i) {
    if (truncate) {
      instance.add_stream(std::make_unique<TruncatingSource>(
                              s.sim, begin + i * span, begin + (i + 1) * span, 7),
                          s.models);
    } else {
      instance.add_stream(std::make_unique<WindowSource>(
                              s.sim, i, begin + i * span, begin + (i + 1) * span),
                          s.models);
    }
  }
  RunResult r;
  r.stats = instance.run(/*online=*/false);
  for (const auto& ev : instance.outputs()) {
    r.outputs.emplace_back(ev.frame.stream_id, ev.frame.index);
    r.results.push_back(ev.result);
  }
  r.drop_hist_count = instance.metrics().histogram("latency.drop_ms").count();
  r.output_hist_count = instance.metrics().histogram("latency.output_ms").count();
  r.ref_batches = instance.metrics().counter("executor.ref_batches").value();
  return r;
}

TEST(RefBatch, BatchedOutputsEqualSingleIncludingOrder) {
  const auto single = run_window(RefMode::kSingle, 2, 700, 1000);
  const auto batched = run_window(RefMode::kBatch, 2, 700, 1000);
  // Identical emitted frames in identical global order is stronger than the
  // contract (which fixes only per-stream order), but it holds here because
  // both modes emit in pop order from the same FIFO ref_q.
  ASSERT_EQ(batched.outputs, single.outputs);
  ASSERT_EQ(batched.results.size(), single.results.size());
  for (std::size_t i = 0; i < single.results.size(); ++i) {
    ASSERT_EQ(batched.results[i].detections.size(),
              single.results[i].detections.size());
    for (std::size_t d = 0; d < single.results[i].detections.size(); ++d) {
      EXPECT_EQ(batched.results[i].detections[d].box,
                single.results[i].detections[d].box);
      EXPECT_DOUBLE_EQ(batched.results[i].detections[d].confidence,
                       single.results[i].detections[d].confidence);
    }
  }
  EXPECT_GT(batched.ref_batches, 0u);
  EXPECT_EQ(single.ref_batches, 0u);
}

TEST(RefBatch, PerStreamFifoOrderHolds) {
  const auto r = run_window(RefMode::kBatch, 3, 700, 1000);
  std::map<int, std::int64_t> prev;
  for (const auto& [stream, index] : r.outputs) {
    auto it = prev.find(stream);
    if (it != prev.end()) {
      EXPECT_GT(index, it->second) << "stream " << stream << " reordered";
    }
    prev[stream] = index;
  }
  EXPECT_GT(r.outputs.size(), 0u);
}

TEST(RefBatch, ThrowingFrameIsDroppedAloneInsideBatches) {
  const auto single = run_window(RefMode::kSingle, 1, 700, 1000, /*truncate=*/true);
  const auto batched = run_window(RefMode::kBatch, 1, 700, 1000, /*truncate=*/true);

  // Truncated frames reach the reference stage and throw there; both modes
  // must drop exactly those frames and emit everything else identically —
  // a batched exception must not take batch-mates down with it.
  EXPECT_EQ(batched.outputs, single.outputs);
  for (const auto& [stream, index] : batched.outputs) {
    EXPECT_NE(index % 7, 0) << "a truncated frame was emitted unvetted";
  }
  const auto& st_b = batched.stats.streams[0];
  const auto& st_s = single.stats.streams[0];
  EXPECT_GT(st_b.fault.degraded_frames, 0u);
  EXPECT_EQ(st_b.fault.degraded_frames, st_s.fault.degraded_frames);
  EXPECT_EQ(st_b.ref.in - st_b.ref.passed, st_b.fault.degraded_frames);
  // Conservation: every ingested frame still terminates exactly once.
  EXPECT_EQ(st_b.latency_ms.count(), st_b.prefetch.passed);
}

TEST(RefBatch, DroppedFramesFeedDropHistogramNotOutputLatency) {
  const auto r = run_window(RefMode::kBatch, 1, 700, 1000, /*truncate=*/true);
  // Satellite fix: reference-stage drops land in latency.drop_ms, and the
  // output-latency distribution counts exactly the emitted frames.
  EXPECT_EQ(r.drop_hist_count, r.stats.streams[0].fault.degraded_frames);
  EXPECT_GT(r.drop_hist_count, 0u);
  EXPECT_EQ(r.output_hist_count, r.outputs.size());
}

TEST(RefCropPack, EmitsSameFramesAndAgreesWithSingleFrameOracle) {
  auto& s = shared_stream();
  const auto single = run_window(RefMode::kSingle, 2, 1000, 1300);
  const auto packed = run_window(RefMode::kCropPack, 2, 1000, 1300);
  // Every mode emits every frame the reference stage could evaluate, so the
  // emitted frame sets match exactly; what kCropPack may change (bounded by
  // the fallback policy) is the detections.
  ASSERT_EQ(packed.outputs, single.outputs);
  ASSERT_GT(packed.outputs.size(), 0u);
  const double conf = s.models.reference->config().confidence_threshold;
  int agree = 0;
  for (std::size_t i = 0; i < packed.outputs.size(); ++i) {
    const bool oracle_pass =
        single.results[i].count_target(s.models.target, conf) >= 1;
    const bool packed_pass =
        packed.results[i].count_target(s.models.target, conf) >= 1;
    if (oracle_pass == packed_pass) ++agree;
  }
  const double agreement =
      static_cast<double>(agree) / static_cast<double>(packed.outputs.size());
  EXPECT_GE(agreement, 0.95)
      << "crop-packed pass/fail verdicts diverge from the single-frame oracle";
}

TEST(RefConfig, ModeNamesAndDefaults) {
  EXPECT_STREQ(to_string(RefMode::kSingle), "single");
  EXPECT_STREQ(to_string(RefMode::kBatch), "batch");
  EXPECT_STREQ(to_string(RefMode::kCropPack), "crop_pack");
  FfsVaConfig cfg;
  EXPECT_EQ(cfg.ref_mode, RefMode::kBatch);
  EXPECT_GE(cfg.ref_batch_size, 1);
  EXPECT_GE(cfg.ref_queue_threshold, 1);
}

}  // namespace
}  // namespace ffsva::core
