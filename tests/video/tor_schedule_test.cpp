#include "video/tor_schedule.hpp"

#include <gtest/gtest.h>

namespace ffsva::video {
namespace {

TEST(TorSchedule, ConstantIsFlat) {
  TorScheduleConfig cfg;
  cfg.pattern = TorPattern::kConstant;
  cfg.base_tor = 0.17;
  TorSchedule sched(cfg, 1);
  for (double t : {0.0, 1000.0, 50000.0}) {
    EXPECT_DOUBLE_EQ(sched.tor_at(t), 0.17);
  }
  EXPECT_NEAR(sched.mean_tor(86400.0), 0.17, 1e-9);
}

TEST(TorSchedule, DiurnalTroughAtPhaseAndPeakOppositeIt) {
  TorScheduleConfig cfg;
  cfg.pattern = TorPattern::kDiurnal;
  cfg.base_tor = 0.10;
  cfg.amplitude = 0.8;
  cfg.period_sec = 86400.0;
  cfg.phase_sec = 0.0;
  TorSchedule sched(cfg, 1);
  const double night = sched.tor_at(0.0);
  const double noon = sched.tor_at(43200.0);
  EXPECT_NEAR(night, 0.10 * 0.2, 1e-9);
  EXPECT_NEAR(noon, 0.10 * 1.8, 1e-9);
  EXPECT_GT(noon, night);
}

TEST(TorSchedule, DiurnalMeanEqualsBase) {
  TorScheduleConfig cfg;
  cfg.pattern = TorPattern::kDiurnal;
  cfg.base_tor = 0.12;
  TorSchedule sched(cfg, 1);
  EXPECT_NEAR(sched.mean_tor(86400.0), 0.12, 0.01);
}

TEST(TorSchedule, DiurnalClampedToUnitInterval) {
  TorScheduleConfig cfg;
  cfg.pattern = TorPattern::kDiurnal;
  cfg.base_tor = 0.8;
  cfg.amplitude = 1.0;  // would swing to 1.6 unclamped
  TorSchedule sched(cfg, 1);
  for (double t = 0; t < 86400.0; t += 3600.0) {
    EXPECT_GE(sched.tor_at(t), 0.0);
    EXPECT_LE(sched.tor_at(t), 1.0);
  }
}

TEST(TorSchedule, BurstySurgesRaiseTorTemporarily) {
  TorScheduleConfig cfg;
  cfg.pattern = TorPattern::kBursty;
  cfg.base_tor = 0.05;
  cfg.surge_tor = 0.9;
  cfg.surge_rate_per_hour = 6.0;
  cfg.surge_len_sec = 120.0;
  TorSchedule sched(cfg, 11);
  int base_samples = 0, surge_samples = 0;
  for (double t = 0; t < 86400.0; t += 10.0) {
    const double tor = sched.tor_at(t);
    if (tor > 0.5) {
      ++surge_samples;
    } else {
      ++base_samples;
      EXPECT_DOUBLE_EQ(tor, 0.05);
    }
  }
  EXPECT_GT(surge_samples, 0);
  EXPECT_GT(base_samples, surge_samples);  // surges are rare
  // Expected surge share: 6/h * 120 s = 20% duty at most.
  EXPECT_LT(static_cast<double>(surge_samples) / (surge_samples + base_samples), 0.4);
}

TEST(TorSchedule, BurstyDeterministicPerSeed) {
  TorScheduleConfig cfg;
  cfg.pattern = TorPattern::kBursty;
  TorSchedule a(cfg, 5), b(cfg, 5), c(cfg, 6);
  int diff = 0;
  for (double t = 0; t < 40000.0; t += 100.0) {
    EXPECT_DOUBLE_EQ(a.tor_at(t), b.tor_at(t));
    diff += a.tor_at(t) != c.tor_at(t);
  }
  EXPECT_GT(diff, 0);
}

TEST(TorSchedule, SegmentsTileTheDuration) {
  TorScheduleConfig cfg;
  cfg.pattern = TorPattern::kDiurnal;
  TorSchedule sched(cfg, 1);
  const auto segs = sched.segments(1000.0, 90.0);
  ASSERT_FALSE(segs.empty());
  EXPECT_DOUBLE_EQ(segs.front().begin_sec, 0.0);
  EXPECT_DOUBLE_EQ(segs.back().end_sec, 1000.0);
  for (std::size_t i = 1; i < segs.size(); ++i) {
    EXPECT_DOUBLE_EQ(segs[i].begin_sec, segs[i - 1].end_sec);
    EXPECT_GE(segs[i].tor, 0.0);
    EXPECT_LE(segs[i].tor, 1.0);
  }
}

TEST(TorSchedule, SegmentsFollowTheCycle) {
  TorScheduleConfig cfg;
  cfg.pattern = TorPattern::kDiurnal;
  cfg.base_tor = 0.10;
  cfg.amplitude = 0.9;
  TorSchedule sched(cfg, 1);
  const auto segs = sched.segments(86400.0, 3600.0);
  ASSERT_EQ(segs.size(), 24u);
  // Midday hours busier than midnight hours.
  EXPECT_GT(segs[12].tor, segs[0].tor * 3);
}

}  // namespace
}  // namespace ffsva::video
