// relaxed-ok: see telemetry/spans.hpp — single-writer ring heads and the
// enable flag; exactness comes from quiesce edges, not ordering.
#include "telemetry/spans.hpp"

#include <algorithm>
#include <fstream>
#include <ostream>

#include "telemetry/metrics.hpp"

namespace ffsva::telemetry {

const char* to_string(Stage s) {
  switch (s) {
    case Stage::kPrefetch: return "prefetch";
    case Stage::kSdd: return "sdd";
    case Stage::kSnm: return "snm";
    case Stage::kTyolo: return "tyolo";
    case Stage::kRef: return "ref";
    case Stage::kExecutor: return "executor";
    case Stage::kSupervise: return "supervise";
    case Stage::kSim: return "sim";
  }
  return "?";
}

struct TraceBuffer::Ring {
  explicit Ring(std::size_t capacity) : slots(capacity) {}
  std::vector<Span> slots;
  /// Total spans ever written; slot = head % capacity. Published with
  /// release so collect() (acquire) sees completed slot writes.
  std::atomic<std::uint64_t> head{0};
  std::uint32_t tid = 0;
};

namespace {
std::int64_t steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Per-thread ring cache, keyed by buffer *identity* (a process-unique id,
/// not the address — a new buffer reusing a dead one's address must not
/// resurrect its rings) so several TraceBuffers (the global engine one, a
/// simulator-owned one) can coexist on one thread.
std::atomic<std::uint64_t> g_next_buffer_id{1};

struct RingCache {
  std::uint64_t buffer_id = 0;
  TraceBuffer::Ring* ring = nullptr;
};
thread_local RingCache t_ring_cache;
}  // namespace

TraceBuffer::TraceBuffer(std::size_t ring_capacity)
    : ring_capacity_(ring_capacity == 0 ? 1 : ring_capacity),
      id_(g_next_buffer_id.fetch_add(1, std::memory_order_relaxed)) {
  epoch_ns_.store(steady_ns(), std::memory_order_relaxed);
}

TraceBuffer::~TraceBuffer() = default;

void TraceBuffer::enable() {
  runtime::MutexLock lk(mu_);
  for (auto& r : rings_) r->head.store(0, std::memory_order_relaxed);
  epoch_ns_.store(steady_ns(), std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_release);
}

void TraceBuffer::disable() { enabled_.store(false, std::memory_order_release); }

std::int64_t TraceBuffer::now_us() const {
  return (steady_ns() - epoch_ns_.load(std::memory_order_relaxed)) / 1000;
}

TraceBuffer::Ring* TraceBuffer::ring_for_this_thread() {
  const std::uint32_t tid = thread_slot();
  runtime::MutexLock lk(mu_);
  // A thread that alternated to another buffer and back finds its old ring.
  for (auto& r : rings_) {
    if (r->tid == tid) return r.get();
  }
  auto ring = std::make_unique<Ring>(ring_capacity_);
  ring->tid = tid;
  Ring* raw = ring.get();
  rings_.push_back(std::move(ring));
  return raw;
}

void TraceBuffer::record(const Span& span) {
  if (!enabled_.load(std::memory_order_relaxed)) return;
  RingCache& cache = t_ring_cache;
  if (cache.buffer_id != id_) {
    cache.buffer_id = id_;
    cache.ring = ring_for_this_thread();
  }
  Ring& r = *cache.ring;
  const std::uint64_t h = r.head.load(std::memory_order_relaxed);
  Span& slot = r.slots[static_cast<std::size_t>(h % r.slots.size())];
  slot = span;
  if (slot.tid == 0) slot.tid = r.tid;
  r.head.store(h + 1, std::memory_order_release);
}

std::vector<Span> TraceBuffer::collect() const {
  std::vector<Span> out;
  {
    runtime::MutexLock lk(mu_);
    for (const auto& r : rings_) {
      const std::uint64_t head = r->head.load(std::memory_order_acquire);
      const std::uint64_t n =
          std::min<std::uint64_t>(head, r->slots.size());
      for (std::uint64_t i = head - n; i < head; ++i) {
        out.push_back(r->slots[static_cast<std::size_t>(i % r->slots.size())]);
      }
    }
  }
  std::stable_sort(out.begin(), out.end(), [](const Span& a, const Span& b) {
    return a.t_start_us < b.t_start_us;
  });
  return out;
}

void TraceBuffer::write_chrome_trace(std::ostream& os) const {
  const auto spans = collect();
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
        "\"args\":{\"name\":\"ffsva\"}}";
  for (const auto& s : spans) {
    os << ",\n{\"name\":\"" << s.name << "\",\"cat\":\"" << to_string(s.stage)
       << "\",\"ph\":\"X\",\"pid\":1,\"tid\":" << s.tid
       << ",\"ts\":" << s.t_start_us
       << ",\"dur\":" << std::max<std::int64_t>(1, s.t_end_us - s.t_start_us)
       << ",\"args\":{";
    os << "\"stream\":" << s.stream;
    if (s.frame >= 0) os << ",\"frame\":" << s.frame;
    if (s.batch > 0) os << ",\"batch\":" << s.batch;
    os << "}}";
  }
  os << "\n]}\n";
}

bool TraceBuffer::write_chrome_trace(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  write_chrome_trace(os);
  return static_cast<bool>(os);
}

TraceBuffer& TraceBuffer::global() {
  // Meyers singleton: every recorder (including each prefetch thread) is
  // joined before the engine returns, so no thread can touch the buffer
  // during static destruction.
  static TraceBuffer instance;
  return instance;
}

}  // namespace ffsva::telemetry
