#include "core/pipeline.hpp"

#include <atomic>
#include <chrono>
#include <thread>

#include "runtime/bounded_queue.hpp"
#include "runtime/rate_limiter.hpp"
#include "runtime/stopwatch.hpp"

namespace ffsva::core {

namespace {
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

/// A frame in flight, stamped with its ingest time.
struct Item {
  video::Frame frame;
  Clock::time_point ingest;
};
}  // namespace

const char* to_string(BatchPolicy p) {
  switch (p) {
    case BatchPolicy::kStatic: return "static";
    case BatchPolicy::kFeedback: return "feedback";
    case BatchPolicy::kDynamic: return "dynamic";
  }
  return "?";
}

StreamStats InstanceStats::aggregate() const {
  StreamStats agg;
  for (const auto& s : streams) {
    agg.prefetch.in += s.prefetch.in;
    agg.prefetch.passed += s.prefetch.passed;
    agg.sdd.in += s.sdd.in;
    agg.sdd.passed += s.sdd.passed;
    agg.snm.in += s.snm.in;
    agg.snm.passed += s.snm.passed;
    agg.tyolo.in += s.tyolo.in;
    agg.tyolo.passed += s.tyolo.passed;
    agg.ref.in += s.ref.in;
    agg.ref.passed += s.ref.passed;
    agg.dropped_at_ingest += s.dropped_at_ingest;
    agg.latency_ms.merge(s.latency_ms);
    agg.ingest_fps += s.ingest_fps;
  }
  return agg;
}

struct FfsVaInstance::Stream {
  int id = 0;
  std::unique_ptr<video::FrameSource> source;
  detect::StreamModels models;

  runtime::BoundedQueue<Item> sdd_q;
  runtime::BoundedQueue<Item> snm_q;
  runtime::BoundedQueue<Item> tyolo_q;

  StreamStats stats;
  std::atomic<bool> tyolo_open{true};  ///< SNM still producing for T-YOLO.
  double ingest_wall_sec = 0.0;

  Stream(int id_, std::unique_ptr<video::FrameSource> src, detect::StreamModels m,
         const FfsVaConfig& cfg)
      : id(id_), source(std::move(src)), models(std::move(m)),
        // The live-capture ring buffer must absorb bursts without blocking
        // the camera; offline the decoder throttles on the SDD threshold.
        // Sized for the larger of the two so one queue serves both modes.
        sdd_q(static_cast<std::size_t>(std::max(cfg.ingest_buffer,
                                                cfg.capacity(cfg.sdd_queue_depth)))),
        snm_q(static_cast<std::size_t>(cfg.capacity(cfg.snm_queue_depth))),
        tyolo_q(static_cast<std::size_t>(cfg.capacity(cfg.tyolo_queue_depth))) {}
};

struct FfsVaInstance::TYoloShared {
  runtime::BoundedQueue<std::pair<int, Item>> ref_q;  ///< (stream id, item)
  AdmissionController admission;
  explicit TYoloShared(const FfsVaConfig& cfg)
      : ref_q(static_cast<std::size_t>(cfg.capacity(cfg.ref_queue_depth))),
        admission(cfg.admit_tyolo_fps, cfg.admit_window_sec) {}
};

FfsVaInstance::FfsVaInstance(FfsVaConfig config)
    : config_(config), tyolo_shared_(std::make_unique<TYoloShared>(config)) {}

FfsVaInstance::~FfsVaInstance() = default;

void FfsVaInstance::add_stream(std::unique_ptr<video::FrameSource> source,
                               detect::StreamModels models) {
  streams_.push_back(std::make_unique<Stream>(static_cast<int>(streams_.size()),
                                              std::move(source), std::move(models),
                                              config_));
}

void FfsVaInstance::set_output_sink(std::function<void(const OutputEvent&)> sink) {
  sink_ = std::move(sink);
}

void FfsVaInstance::prefetch_loop(Stream& s, bool online) {
  runtime::RateLimiter limiter(config_.online_fps, /*burst=*/2.0);
  runtime::Stopwatch watch;
  const auto frame_interval =
      std::chrono::duration<double>(1.0 / config_.online_fps);
  while (auto f = s.source->next()) {
    ++s.stats.prefetch.in;
    Item item{std::move(*f), Clock::now()};
    if (online) {
      limiter.acquire();
      // Overload behaviour: a live camera cannot block — if the pipeline
      // cannot absorb the frame within one frame time, the frame is lost
      // and counted (the admission controller re-forwards such streams).
      if (!s.sdd_q.push_for(std::move(item), frame_interval)) {
        ++s.stats.dropped_at_ingest;
        continue;
      }
    } else {
      if (!s.sdd_q.push(std::move(item))) break;  // queue closed underneath us
    }
    ++s.stats.prefetch.passed;
  }
  s.ingest_wall_sec = watch.elapsed_sec();
  s.sdd_q.close();
}

void FfsVaInstance::sdd_loop(Stream& s) {
  while (auto item = s.sdd_q.pop()) {
    ++s.stats.sdd.in;
    if (s.models.sdd->pass(item->frame.image)) {
      ++s.stats.sdd.passed;
      if (!s.snm_q.push(std::move(*item))) break;
    } else {
      s.stats.latency_ms.add(ms_since(item->ingest));
    }
  }
  s.snm_q.close();
}

void FfsVaInstance::snm_loop(Stream& s) {
  const int queue_threshold = config_.snm_queue_depth;
  for (;;) {
    // Batch formation mirrors DynamicBatcher::next_batch (Section 4.3.2):
    // static waits for a full batch, feedback waits for min(batch, queue
    // threshold), dynamic takes whatever is available.
    std::vector<Item> batch;
    switch (config_.batch_policy) {
      case BatchPolicy::kStatic:
        batch = s.snm_q.pop_exact(static_cast<std::size_t>(config_.batch_size));
        break;
      case BatchPolicy::kFeedback:
        batch = s.snm_q.pop_exact(static_cast<std::size_t>(
            std::min(config_.batch_size, queue_threshold)));
        break;
      case BatchPolicy::kDynamic:
        batch = s.snm_q.pop_batch(static_cast<std::size_t>(config_.batch_size));
        break;
    }
    if (batch.empty()) break;  // closed and drained

    std::vector<double> scores;
    {
      // SNM executes on GPU0 (shared with T-YOLO).
      std::lock_guard gpu(gpu0_);
      std::vector<const image::Image*> imgs;
      imgs.reserve(batch.size());
      for (const auto& it : batch) imgs.push_back(&it.frame.image);
      scores = s.models.snm->predict_batch(imgs);
    }
    const double t_pre = s.models.snm->t_pre();
    for (std::size_t i = 0; i < batch.size(); ++i) {
      ++s.stats.snm.in;
      if (scores[i] >= t_pre) {
        ++s.stats.snm.passed;
        if (!s.tyolo_q.push(std::move(batch[i]))) return;
      } else {
        s.stats.latency_ms.add(ms_since(batch[i].ingest));
      }
    }
  }
  s.tyolo_open.store(false, std::memory_order_release);
}

void FfsVaInstance::tyolo_loop() {
  TYoloScheduler scheduler(config_.num_tyolo);
  std::vector<int> depths(streams_.size(), 0);
  for (;;) {
    bool any_open = false;
    for (std::size_t i = 0; i < streams_.size(); ++i) {
      depths[i] = static_cast<int>(streams_[i]->tyolo_q.depth());
      if (streams_[i]->tyolo_open.load(std::memory_order_acquire) || depths[i] > 0) {
        any_open = true;
      }
    }
    const auto pick = scheduler.next(depths);
    if (pick.stream < 0) {
      if (!any_open) break;
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      continue;
    }
    Stream& s = *streams_[static_cast<std::size_t>(pick.stream)];
    std::vector<Item> items;
    for (int k = 0; k < pick.take; ++k) {
      auto it = s.tyolo_q.try_pop();
      if (!it) break;
      items.push_back(std::move(*it));
    }
    int served = 0;
    for (auto& item : items) {
      ++s.stats.tyolo.in;
      bool pass;
      {
        std::lock_guard gpu(gpu0_);
        pass = s.models.tyolo->pass(item.frame.image, s.models.target,
                                    config_.number_of_objects);
      }
      ++served;
      if (pass) {
        ++s.stats.tyolo.passed;
        if (!tyolo_shared_->ref_q.push({s.id, std::move(item)})) return;
      } else {
        s.stats.latency_ms.add(ms_since(item.ingest));
      }
    }
    if (served > 0) {
      const double now =
          std::chrono::duration<double>(Clock::now().time_since_epoch()).count();
      tyolo_shared_->admission.on_tyolo_served(now, served);
    }
  }
  tyolo_shared_->ref_q.close();
}

void FfsVaInstance::reference_loop() {
  while (auto entry = tyolo_shared_->ref_q.pop()) {
    auto& [stream_id, item] = *entry;
    Stream& s = *streams_[static_cast<std::size_t>(stream_id)];
    ++s.stats.ref.in;
    detect::DetectionResult result;
    {
      std::lock_guard gpu(gpu1_);
      result = s.models.reference->detect(item.frame.image);
    }
    ++s.stats.ref.passed;
    const double latency = ms_since(item.ingest);
    s.stats.latency_ms.add(latency);
    OutputEvent ev{std::move(item.frame), std::move(result), latency};
    if (sink_) {
      sink_(ev);
    } else {
      std::lock_guard lk(outputs_mu_);
      outputs_.push_back(std::move(ev));
    }
  }
}

InstanceStats FfsVaInstance::run(bool online) {
  runtime::Stopwatch wall;
  std::vector<std::thread> threads;
  threads.reserve(streams_.size() * 3 + 2);
  for (auto& s : streams_) {
    threads.emplace_back([this, &s, online] { prefetch_loop(*s, online); });
    threads.emplace_back([this, &s] { sdd_loop(*s); });
    threads.emplace_back([this, &s] { snm_loop(*s); });
  }
  threads.emplace_back([this] { tyolo_loop(); });
  threads.emplace_back([this] { reference_loop(); });
  for (auto& t : threads) t.join();

  InstanceStats out;
  out.wall_sec = wall.elapsed_sec();
  std::uint64_t ingested = 0;
  for (auto& s : streams_) {
    if (s->ingest_wall_sec > 0.0) {
      s->stats.ingest_fps =
          static_cast<double>(s->stats.prefetch.passed) / s->ingest_wall_sec;
    }
    ingested += s->stats.prefetch.passed;
    out.streams.push_back(s->stats);
  }
  out.total_throughput_fps =
      out.wall_sec > 0.0 ? static_cast<double>(ingested) / out.wall_sec : 0.0;
  {
    std::lock_guard lk(outputs_mu_);
    for (const auto& ev : outputs_) out.output_latency_ms.add(ev.latency_ms);
  }
  return out;
}

BaselineStats run_yolo_baseline(
    std::vector<std::unique_ptr<video::FrameSource>> sources,
    const std::vector<detect::StreamModels>& models, bool online,
    double online_fps) {
  BaselineStats stats;
  runtime::Stopwatch wall;
  // Two GPU workers pull from a shared frame queue — YOLOv2 running on both
  // GPUs, the paper's baseline deployment.
  runtime::BoundedQueue<std::pair<int, Item>> q(8);
  std::atomic<std::uint64_t> frames{0}, dropped{0};
  std::mutex hist_mu;

  std::vector<std::thread> producers;
  producers.reserve(sources.size());
  for (std::size_t i = 0; i < sources.size(); ++i) {
    producers.emplace_back([&, i] {
      runtime::RateLimiter limiter(online_fps, 2.0);
      const auto interval = std::chrono::duration<double>(1.0 / online_fps);
      while (auto f = sources[i]->next()) {
        Item item{std::move(*f), Clock::now()};
        if (online) {
          limiter.acquire();
          if (!q.push_for(std::make_pair(static_cast<int>(i), std::move(item)),
                          interval)) {
            dropped.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
        } else {
          if (!q.push(std::make_pair(static_cast<int>(i), std::move(item)))) break;
        }
        frames.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::mutex gpu[2];
  std::vector<std::thread> workers;
  for (int g = 0; g < 2; ++g) {
    workers.emplace_back([&, g] {
      while (auto entry = q.pop()) {
        auto& [stream_id, item] = *entry;
        detect::DetectionResult r;
        {
          std::lock_guard lk(gpu[g]);
          r = models[static_cast<std::size_t>(stream_id)].reference->detect(
              item.frame.image);
        }
        std::lock_guard lk(hist_mu);
        stats.latency_ms.add(ms_since(item.ingest));
      }
    });
  }

  for (auto& t : producers) t.join();
  q.close();
  for (auto& t : workers) t.join();

  stats.wall_sec = wall.elapsed_sec();
  stats.frames = frames.load();
  stats.dropped = dropped.load();
  stats.throughput_fps =
      stats.wall_sec > 0.0 ? static_cast<double>(stats.frames) / stats.wall_sec : 0.0;
  return stats;
}

}  // namespace ffsva::core
