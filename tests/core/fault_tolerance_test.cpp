// Supervision-layer integration tests: fault injection through the full
// threaded engine (DESIGN.md Section 9). The contract under test: faults
// stay per-stream (a hung or failing source never wedges the shared
// stages), degraded frames are accounted (never silently lost), stop() and
// the run deadline wind a run down promptly, and a quarantined stream's
// prefetch thread is cancelled and joined before run() returns.
//
// This binary carries the `tsan` and `asan` ctest labels: the quarantine /
// cancel-and-join machinery is exactly the code whose races and lifetimes
// the sanitizers must vet.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/pipeline.hpp"
#include "video/fault_injection.hpp"
#include "video/profiles.hpp"

namespace ffsva::core {
namespace {

struct FaultWorld {
  video::SceneConfig cfg;
  detect::StreamModels models;
  std::vector<video::Frame> window;  ///< Pre-rendered eval frames.

  FaultWorld() {
    cfg = video::jackson_profile();
    cfg.width = 96;
    cfg.height = 72;
    cfg.tor = 0.4;  // busy: a healthy share of frames reaches the deep stages
    video::SceneSimulator sim(cfg, 23, 460);
    std::vector<video::Frame> calib;
    for (int i = 0; i < 400; ++i) calib.push_back(sim.render(i));
    detect::SpecializeConfig sc;
    sc.target = cfg.target;
    sc.snm.epochs = 3;
    models = detect::specialize_stream(calib, sc, 23);
    for (int i = 400; i < 460; ++i) window.push_back(sim.render(i));
  }
};

FaultWorld& world() {
  static auto* w = new FaultWorld();
  return *w;
}

/// Replays the shared pre-rendered window as one stream.
class ReplaySource final : public video::FrameSource {
 public:
  ReplaySource(const std::vector<video::Frame>* window, int stream_id)
      : window_(window), stream_id_(stream_id) {}

  std::optional<video::Frame> next() override {
    if (next_ >= window_->size()) return std::nullopt;
    video::Frame f = (*window_)[next_++];
    f.stream_id = stream_id_;
    return f;
  }
  std::int64_t total_frames() const override {
    return static_cast<std::int64_t>(window_->size());
  }

 private:
  const std::vector<video::Frame>* window_;
  int stream_id_;
  std::size_t next_ = 0;
};

/// Cycles the window forever — for stop()/deadline tests, which must end
/// the run themselves.
class EndlessSource final : public video::FrameSource {
 public:
  EndlessSource(const std::vector<video::Frame>* window, int stream_id)
      : window_(window), stream_id_(stream_id) {}

  std::optional<video::Frame> next() override {
    video::Frame f = (*window_)[static_cast<std::size_t>(i_) % window_->size()];
    f.stream_id = stream_id_;
    f.index = i_++;
    return f;
  }
  std::int64_t total_frames() const override { return -1; }  // unbounded

 private:
  const std::vector<video::Frame>* window_;
  int stream_id_;
  std::int64_t i_ = 0;
};

std::unique_ptr<video::FaultInjectingSource> faulty(
    const std::vector<video::Frame>* window, int stream_id,
    video::FaultPlan plan, std::uint64_t seed) {
  return std::make_unique<video::FaultInjectingSource>(
      std::make_unique<ReplaySource>(window, stream_id), plan, seed);
}

/// Survivor frame indices per stream, via the output sink.
struct SurvivorMap {
  std::mutex mu;
  std::map<int, std::vector<std::int64_t>> by_stream;

  std::function<void(const OutputEvent&)> sink() {
    return [this](const OutputEvent& ev) {
      std::lock_guard lk(mu);
      by_stream[ev.frame.stream_id].push_back(ev.frame.index);
    };
  }
};

/// One clean single-stream run: the reference survivor set every healthy
/// stream must reproduce whatever faults its neighbors are suffering.
const std::vector<std::int64_t>& clean_survivors() {
  static auto* survivors = [] {
    auto& w = world();
    FfsVaConfig cfg;
    FfsVaInstance instance(cfg);
    instance.add_stream(std::make_unique<ReplaySource>(&w.window, 0), w.models);
    auto* map = new SurvivorMap();
    instance.set_output_sink(map->sink());
    instance.run(/*online=*/false);
    return &map->by_stream[0];
  }();
  return *survivors;
}

TEST(FaultTolerance, RunWithZeroStreamsThrows) {
  FfsVaInstance instance(FfsVaConfig{});
  EXPECT_THROW(instance.run(false), std::invalid_argument);
}

TEST(FaultTolerance, SecondRunThrows) {
  auto& w = world();
  FfsVaInstance instance(FfsVaConfig{});
  instance.add_stream(std::make_unique<ReplaySource>(&w.window, 0), w.models);
  instance.set_output_sink([](const OutputEvent&) {});
  instance.run(false);
  EXPECT_THROW(instance.run(false), std::logic_error);
}

// Transient decode errors retried under the budget lose no frames: the
// faulty stream's survivors are identical to a clean run's.
TEST(FaultTolerance, TransientErrorsRetryWithoutFrameLoss) {
  auto& w = world();
  const auto frames = static_cast<std::uint64_t>(w.window.size());
  video::FaultPlan plan;
  plan.p_transient = 0.1;
  plan.transient_at = 5;  // plus one pinned error for determinism

  FfsVaConfig cfg;
  cfg.source_max_retries = 6;
  FfsVaInstance instance(cfg);
  instance.add_stream(faulty(&w.window, 0, plan, 99), w.models);
  SurvivorMap survivors;
  instance.set_output_sink(survivors.sink());

  const auto stats = instance.run(false);
  const auto& st = stats.streams[0];
  EXPECT_EQ(st.prefetch.passed, frames);
  EXPECT_EQ(st.latency_ms.count(), frames);
  EXPECT_GT(st.fault.decode_errors, 0u);
  EXPECT_GT(st.fault.retries, 0u);
  EXPECT_FALSE(st.fault.quarantined);
  EXPECT_EQ(stats.health.degraded_streams, 1);
  EXPECT_EQ(survivors.by_stream[0], clean_survivors());
}

// A fatal session drop is revived by restart() at the pre-fault position:
// one restart, zero frame loss.
TEST(FaultTolerance, FatalErrorRestartsSourceWithoutFrameLoss) {
  auto& w = world();
  const auto frames = static_cast<std::uint64_t>(w.window.size());
  video::FaultPlan plan;
  plan.fatal_at = 17;

  FfsVaInstance instance(FfsVaConfig{});
  instance.add_stream(faulty(&w.window, 0, plan, 1), w.models);
  SurvivorMap survivors;
  instance.set_output_sink(survivors.sink());

  const auto stats = instance.run(false);
  const auto& st = stats.streams[0];
  EXPECT_EQ(st.fault.restarts, 1u);
  EXPECT_EQ(st.fault.decode_errors, 1u);
  EXPECT_EQ(st.prefetch.passed, frames);
  EXPECT_EQ(st.latency_ms.count(), frames);
  EXPECT_EQ(survivors.by_stream[0], clean_survivors());
}

// An unrestartable source ends its stream gracefully: the frames already
// ingested drain, the run completes, nothing hangs.
TEST(FaultTolerance, UnrecoverableSourceEndsStreamGracefully) {
  auto& w = world();
  video::FaultPlan plan;
  plan.fatal_at = 9;
  plan.restartable = false;

  FfsVaInstance instance(FfsVaConfig{});
  instance.add_stream(faulty(&w.window, 0, plan, 1), w.models);
  instance.set_output_sink([](const OutputEvent&) {});

  const auto stats = instance.run(false);
  const auto& st = stats.streams[0];
  EXPECT_EQ(st.prefetch.passed, 9u);
  EXPECT_EQ(st.latency_ms.count(), 9u);  // all nine drained to a terminus
  EXPECT_EQ(st.fault.decode_errors, 1u);
  EXPECT_EQ(st.fault.restarts, 0u);
  EXPECT_FALSE(st.fault.quarantined);
}

// Truncated (zero-size) frames make every model throw; under kDrop the
// frame terminates at the first filter with its latency recorded, so
// conservation still holds frame-for-frame.
TEST(FaultTolerance, DegradePolicyDropTerminatesUnevaluableFrames) {
  auto& w = world();
  const auto frames = static_cast<std::uint64_t>(w.window.size());
  video::FaultPlan plan;
  plan.p_truncated = 0.3;

  FfsVaConfig cfg;
  cfg.degrade_policy = DegradePolicy::kDrop;
  FfsVaInstance instance(cfg);
  instance.add_stream(faulty(&w.window, 0, plan, 42), w.models);
  SurvivorMap survivors;
  instance.set_output_sink(survivors.sink());

  const auto stats = instance.run(false);
  const auto& st = stats.streams[0];
  EXPECT_EQ(st.prefetch.passed, frames);
  EXPECT_EQ(st.latency_ms.count(), frames);
  EXPECT_GT(st.fault.degraded_frames, 0u);
  // Dropped frames never reach the output: survivors are a subset of the
  // clean run's (the truncated frames' pixels are gone, nothing to emit).
  const auto& clean = clean_survivors();
  const std::set<std::int64_t> clean_set(clean.begin(), clean.end());
  for (const auto idx : survivors.by_stream[0]) {
    EXPECT_TRUE(clean_set.count(idx)) << "frame " << idx << " not in clean run";
  }
}

// Under kBypass an unevaluable frame rides past the cheap filters but the
// reference model (the last vetting stage) still refuses to emit it —
// bypass must not leak unvetted frames out of the system.
TEST(FaultTolerance, DegradePolicyBypassNeverEmitsUnvetted) {
  auto& w = world();
  const auto frames = static_cast<std::uint64_t>(w.window.size());
  video::FaultPlan plan;
  plan.p_truncated = 0.3;

  FfsVaConfig cfg;
  cfg.degrade_policy = DegradePolicy::kBypass;
  FfsVaInstance instance(cfg);
  instance.add_stream(faulty(&w.window, 0, plan, 42), w.models);
  SurvivorMap survivors;
  instance.set_output_sink(survivors.sink());

  const auto stats = instance.run(false);
  const auto& st = stats.streams[0];
  EXPECT_EQ(st.prefetch.passed, frames);
  EXPECT_EQ(st.latency_ms.count(), frames);
  EXPECT_GT(st.fault.degraded_frames, 0u);
  // Every emitted frame came through detect() successfully: survivors are a
  // subset of the clean run's (a truncated frame has no pixels to vet).
  const auto& clean = clean_survivors();
  const std::set<std::int64_t> clean_set(clean.begin(), clean.end());
  for (const auto idx : survivors.by_stream[0]) {
    EXPECT_TRUE(clean_set.count(idx)) << "frame " << idx << " not in clean run";
  }
  // Bypassed-then-refused frames terminate at the reference stage: ref saw
  // more frames than it passed.
  EXPECT_GT(st.ref.in, st.ref.passed);
}

// The fault matrix: 32 streams, four faulty (hung source, transient decode
// errors, premature EOS, truncated frames). The 28 healthy streams must
// produce survivor sets identical to a clean run, the hung stream must be
// quarantined within the stall timeout, and the run must shut down cleanly.
TEST(FaultTolerance, FaultMatrixIsolatesFaultyStreams) {
  auto& w = world();
  constexpr int kStreams = 32;
  constexpr int kStall = 1, kTransient = 5, kEos = 9, kTruncated = 13;
  const auto frames = static_cast<std::uint64_t>(w.window.size());

  FfsVaConfig cfg;
  cfg.stall_timeout_ms = 250;
  cfg.source_max_retries = 6;
  cfg.degrade_policy = DegradePolicy::kDrop;
  FfsVaInstance instance(cfg);

  auto stall_done = std::make_shared<std::atomic<bool>>(false);
  for (int s = 0; s < kStreams; ++s) {
    video::FaultPlan plan;
    switch (s) {
      case kStall:
        plan.stall_at = 10;
        plan.stall_ms = 1500;  // far past the 250 ms stall timeout
        plan.stall_done = stall_done;
        break;
      case kTransient:
        plan.p_transient = 0.1;
        plan.transient_at = 3;
        break;
      case kEos:
        plan.premature_eos_at = 20;
        break;
      case kTruncated:
        plan.p_truncated = 0.4;
        break;
      default:
        break;  // clean plan: the wrapper is transparent
    }
    instance.add_stream(faulty(&w.window, s, plan, 99), w.models);
  }
  SurvivorMap survivors;
  instance.set_output_sink(survivors.sink());

  const auto stats = instance.run(/*online=*/false);

  ASSERT_EQ(stats.streams.size(), static_cast<std::size_t>(kStreams));
  const auto& clean = clean_survivors();
  for (int s = 0; s < kStreams; ++s) {
    const auto& st = stats.streams[static_cast<std::size_t>(s)];
    if (s == kStall) {
      EXPECT_TRUE(st.fault.quarantined) << "hung stream not quarantined";
      continue;  // its counters froze mid-flight; no conservation claim
    }
    EXPECT_FALSE(st.fault.quarantined) << "stream " << s;
    if (s == kEos) {
      EXPECT_EQ(st.prefetch.passed, 20u);  // ended early, but cleanly
      EXPECT_EQ(st.latency_ms.count(), 20u);
      continue;
    }
    // Every other stream — including the retried-transient and the
    // degraded-truncated one — conserves all 60 frames.
    EXPECT_EQ(st.prefetch.passed, frames) << "stream " << s;
    EXPECT_EQ(st.latency_ms.count(), frames) << "stream " << s;
    if (s != kTransient && s != kTruncated) {
      EXPECT_FALSE(st.fault.any()) << "stream " << s;
      std::lock_guard lk(survivors.mu);
      EXPECT_EQ(survivors.by_stream[s], clean) << "stream " << s;
    }
  }
  // The transient stream lost nothing, so its survivors match too.
  {
    std::lock_guard lk(survivors.mu);
    EXPECT_EQ(survivors.by_stream[kTransient], clean);
  }
  EXPECT_EQ(stats.health.quarantined_streams, 1);
  EXPECT_GE(stats.health.degraded_streams, 2);  // transient + truncated
  EXPECT_GT(stats.health.retries, 0u);
  EXPECT_GT(stats.health.degraded_frames, 0u);

  // The quarantined stream's prefetch thread is joined before run()
  // returns: the quarantine cancelled the stalled decode (stall_done is set
  // before the stall unwinds), so the stall must already be over here.
  EXPECT_TRUE(stall_done->load(std::memory_order_acquire));
}

// stop() from another thread winds an endless run down promptly and the
// report says so.
TEST(FaultTolerance, StopUnwindsAnEndlessRun) {
  auto& w = world();
  FfsVaConfig cfg;
  FfsVaInstance instance(cfg);
  for (int s = 0; s < 4; ++s) {
    instance.add_stream(std::make_unique<EndlessSource>(&w.window, s), w.models);
  }
  instance.set_output_sink([](const OutputEvent&) {});

  InstanceStats stats;
  std::thread runner([&] { stats = instance.run(/*online=*/false); });
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  instance.stop();
  runner.join();  // would hang forever if stop() did not take

  EXPECT_TRUE(stats.health.stopped);
  EXPECT_FALSE(stats.health.deadline_hit);
  EXPECT_GT(stats.aggregate().prefetch.passed, 0u);
}

// The run deadline is the same mechanism, armed from config: the watchdog
// calls stop() when the budget expires.
TEST(FaultTolerance, DeadlineStopsTheRun) {
  auto& w = world();
  FfsVaConfig cfg;
  cfg.run_deadline_ms = 300;
  FfsVaInstance instance(cfg);
  for (int s = 0; s < 4; ++s) {
    instance.add_stream(std::make_unique<EndlessSource>(&w.window, s), w.models);
  }
  instance.set_output_sink([](const OutputEvent&) {});

  const auto stats = instance.run(/*online=*/false);  // returns on its own
  EXPECT_TRUE(stats.health.deadline_hit);
  EXPECT_TRUE(stats.health.stopped);
  EXPECT_GT(stats.aggregate().prefetch.passed, 0u);
}

}  // namespace
}  // namespace ffsva::core
