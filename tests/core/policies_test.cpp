#include "core/policies.hpp"

#include <gtest/gtest.h>

namespace ffsva::core {
namespace {

// --------------------------------------------------------- DynamicBatcher --

TEST(DynamicBatcher, DynamicTakesWhateverIsAvailable) {
  DynamicBatcher b(BatchPolicy::kDynamic, 16, 10);
  EXPECT_EQ(b.next_batch(1, false).take, 1);
  EXPECT_EQ(b.next_batch(7, false).take, 7);
  EXPECT_EQ(b.next_batch(30, false).take, 16);  // capped at BatchSize
  EXPECT_FALSE(b.next_batch(1, false).wait);
}

TEST(DynamicBatcher, DynamicWaitsOnlyWhenEmpty) {
  DynamicBatcher b(BatchPolicy::kDynamic, 16, 10);
  const auto d = b.next_batch(0, false);
  EXPECT_TRUE(d.wait);
  EXPECT_EQ(d.take, 0);
  EXPECT_FALSE(b.next_batch(0, true).wait);  // ended stream: stop
}

TEST(StaticBatcher, WaitsForFullBatch) {
  DynamicBatcher b(BatchPolicy::kStatic, 8, 10);
  EXPECT_TRUE(b.next_batch(7, false).wait);
  EXPECT_EQ(b.next_batch(8, false).take, 8);
  EXPECT_EQ(b.next_batch(20, false).take, 8);
}

TEST(StaticBatcher, DrainsShortOnStreamEnd) {
  DynamicBatcher b(BatchPolicy::kStatic, 8, 10);
  const auto d = b.next_batch(3, true);
  EXPECT_FALSE(d.wait);
  EXPECT_EQ(d.take, 3);
}

TEST(FeedbackBatcher, TargetCappedByQueueThreshold) {
  // "When the batch size is greater than the queue depth threshold, video
  // frames have to wait" — the feedback batch can never exceed the
  // threshold (Section 4.3.2).
  DynamicBatcher b(BatchPolicy::kFeedback, 30, 10);
  EXPECT_TRUE(b.next_batch(9, false).wait);
  EXPECT_EQ(b.next_batch(10, false).take, 10);
  DynamicBatcher small(BatchPolicy::kFeedback, 4, 10);
  EXPECT_EQ(small.next_batch(10, false).take, 4);
}

TEST(Batcher, DegenerateSizesClamped) {
  DynamicBatcher b(BatchPolicy::kDynamic, 0, 0);
  EXPECT_EQ(b.batch_size(), 1);
  EXPECT_EQ(b.next_batch(5, false).take, 1);
}

// ----------------------------------------------------------- BatchDrain --

TEST(BatchDrain, DynamicConsumesPendingImmediately) {
  BatchDrain d(BatchPolicy::kDynamic, 8, 16);
  EXPECT_EQ(d.batch_size(), 8);
  auto s = d.next(3, false);
  EXPECT_EQ(s.take, 3);
  EXPECT_FALSE(s.block);
  s = d.next(20, false);
  EXPECT_EQ(s.take, 8);  // capped at the batch size
}

TEST(BatchDrain, EmptyPendingBlocksUntilEnded) {
  BatchDrain d(BatchPolicy::kDynamic, 8, 16);
  auto s = d.next(0, false);
  EXPECT_TRUE(s.block);
  EXPECT_EQ(s.take, 0);
  // Queue closed and drained: take == 0 && !block means the stage is done.
  s = d.next(0, true);
  EXPECT_FALSE(s.block);
  EXPECT_EQ(s.take, 0);
}

TEST(BatchDrain, StaticBlocksForFullBatchThenDrainsShortAtEnd) {
  BatchDrain d(BatchPolicy::kStatic, 8, 16);
  EXPECT_TRUE(d.next(7, false).block);   // wait -> blocking-pop one more
  EXPECT_EQ(d.next(8, false).take, 8);
  const auto s = d.next(3, true);        // ended: drain what is left
  EXPECT_FALSE(s.block);
  EXPECT_EQ(s.take, 3);
}

TEST(BatchDrain, FeedbackTargetIsMinOfBatchAndThreshold) {
  BatchDrain d(BatchPolicy::kFeedback, 12, 4);
  EXPECT_TRUE(d.next(3, false).block);
  EXPECT_EQ(d.next(4, false).take, 4);
}

// ------------------------------------------------------ FeedbackController --

TEST(FeedbackController, ThrottlesAtThreshold) {
  FfsVaConfig cfg;  // thresholds 2 / 10 / 2; reference queue 64
  FeedbackController fb(cfg);
  EXPECT_TRUE(fb.sdd_may_push(9));
  EXPECT_FALSE(fb.sdd_may_push(10));
  EXPECT_TRUE(fb.snm_may_push(1));
  EXPECT_FALSE(fb.snm_may_push(2));
  EXPECT_TRUE(fb.tyolo_may_push(cfg.ref_queue_depth - 1));
  EXPECT_FALSE(fb.tyolo_may_push(cfg.ref_queue_depth));
}

TEST(FeedbackController, StaticPolicyEffectivelyUnbounded) {
  FfsVaConfig cfg;
  cfg.batch_policy = BatchPolicy::kStatic;
  FeedbackController fb(cfg);
  EXPECT_TRUE(fb.sdd_may_push(1000));
  EXPECT_TRUE(fb.snm_may_push(1000));
}

// -------------------------------------------------------- TYoloScheduler --

TEST(TYoloScheduler, RoundRobinSkipsEmptyQueues) {
  TYoloScheduler sched(4);
  std::vector<int> depths{0, 3, 0, 5};
  auto p1 = sched.next(depths);
  EXPECT_EQ(p1.stream, 1);
  EXPECT_EQ(p1.take, 3);
  auto p2 = sched.next(depths);
  EXPECT_EQ(p2.stream, 3);
  auto p3 = sched.next(depths);
  EXPECT_EQ(p3.stream, 1);  // wraps around
}

TEST(TYoloScheduler, ExtractionCapIsNumTyolo) {
  TYoloScheduler sched(4);
  std::vector<int> depths{9};
  EXPECT_EQ(sched.next(depths).take, 4);
  depths[0] = 2;
  EXPECT_EQ(sched.next(depths).take, 2);
}

TEST(TYoloScheduler, AllEmptyReturnsNoStream) {
  TYoloScheduler sched(2);
  std::vector<int> depths{0, 0, 0};
  EXPECT_EQ(sched.next(depths).stream, -1);
}

TEST(TYoloScheduler, FairnessOverManyCycles) {
  // With all queues persistently non-empty, service counts stay balanced.
  TYoloScheduler sched(2);
  std::vector<int> depths{5, 5, 5, 5};
  std::vector<int> served(4, 0);
  for (int i = 0; i < 400; ++i) {
    const auto p = sched.next(depths);
    ASSERT_GE(p.stream, 0);
    ++served[static_cast<std::size_t>(p.stream)];
  }
  for (int s : served) EXPECT_EQ(s, 100);
}

TEST(TYoloScheduler, StarvationFreeWhenOneStreamDominates) {
  TYoloScheduler sched(2);
  std::vector<int> depths{100, 1, 100, 1};
  std::vector<int> served(4, 0);
  for (int i = 0; i < 40; ++i) {
    const auto p = sched.next(depths);
    ++served[static_cast<std::size_t>(p.stream)];
  }
  // Every stream gets service despite the imbalance.
  for (int s : served) EXPECT_GT(s, 0);
}

// --------------------------------------------------- AdmissionController --

TEST(AdmissionController, SpareCapacityNeedsAFullQuietWindow) {
  AdmissionController adm(140.0, 5.0);
  adm.on_tyolo_served(0.0, 10);
  // Only 1 second of history: not enough evidence yet.
  EXPECT_FALSE(adm.has_spare_capacity(1.0));
  adm.on_tyolo_served(5.0, 10);
  // 5+ seconds of history at ~4 fps: spare.
  EXPECT_TRUE(adm.has_spare_capacity(5.2));
}

TEST(AdmissionController, BusyServiceBlocksAdmission) {
  AdmissionController adm(140.0, 5.0);
  for (int t = 0; t <= 50; ++t) {
    adm.on_tyolo_served(t * 0.1, 20);  // 200 fps
  }
  EXPECT_FALSE(adm.has_spare_capacity(5.0));
  EXPECT_GT(adm.windowed_fps(5.0), 140.0);
}

TEST(AdmissionController, WindowForgetsOldSamples) {
  AdmissionController adm(140.0, 5.0);
  for (int t = 0; t <= 50; ++t) adm.on_tyolo_served(t * 0.1, 30);
  // 30 s later the busy burst has aged out entirely.
  EXPECT_NEAR(adm.windowed_fps(35.0), 0.0, 1e-9);
}

TEST(AdmissionController, OverloadSignalDecays) {
  AdmissionController adm(140.0, 5.0);
  EXPECT_FALSE(adm.overloaded(0.0));
  adm.on_queue_over_threshold(10.0);
  EXPECT_TRUE(adm.overloaded(10.5));
  EXPECT_FALSE(adm.overloaded(11.5));
}

}  // namespace
}  // namespace ffsva::core
