file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_numberofobjects.dir/bench_fig8_numberofobjects.cpp.o"
  "CMakeFiles/bench_fig8_numberofobjects.dir/bench_fig8_numberofobjects.cpp.o.d"
  "bench_fig8_numberofobjects"
  "bench_fig8_numberofobjects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_numberofobjects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
