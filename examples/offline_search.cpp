// Post-facto search: find every crowd scene in a stored recording.
//
// The paper's second use case (Section 1): "post-facto analysis to look
// for a certain event or object retroactively". This example encodes an
// aquarium-camera day into the stored-video codec, then scans it twice:
//
//   * the brute-force way — every frame through the reference model;
//   * the FFS-VA way — the filtering cascade in front of it;
//
// and reports the found scenes plus the speedup (the paper's offline
// headline is 3x at low TOR; at this clip's TOR expect less — the advantage
// shrinks as TOR grows, Figure 4).
//
// Build & run:  ./build/examples/offline_search
#include <cstdio>
#include <memory>

#include "core/pipeline.hpp"
#include "runtime/stopwatch.hpp"
#include "video/codec.hpp"
#include "video/profiles.hpp"
#include "video/source.hpp"

using namespace ffsva;

int main() {
  // --- Record the "day" -----------------------------------------------------
  video::SceneConfig cfg = video::coral_profile();
  cfg.width = 256;
  cfg.height = 144;
  cfg.tor = 0.30;
  const std::int64_t kCalib = 800, kTotal = 2300;
  auto sim = std::make_shared<video::SceneSimulator>(cfg, 9, kTotal);

  std::printf("Encoding %lld frames to the stored-video codec...\n",
              static_cast<long long>(kTotal - kCalib));
  std::vector<video::Frame> recording;
  for (std::int64_t i = kCalib; i < kTotal; ++i) recording.push_back(sim->render(i));
  auto stored = std::make_shared<video::StoredVideo>(
      video::StoredVideo::encode(recording, 32, 4));
  const auto cstats = stored->stats();
  std::printf("  %.1f MB raw -> %.1f MB stored (%.1fx)\n\n", cstats.raw_bytes / 1e6,
              cstats.encoded_bytes / 1e6, cstats.compression_ratio());

  // --- Specialize ------------------------------------------------------------
  std::printf("Specializing the camera on its calibration window...\n");
  std::vector<video::Frame> calib;
  for (std::int64_t i = 0; i < kCalib; ++i) calib.push_back(sim->render(i));
  detect::SpecializeConfig sc;
  sc.target = cfg.target;
  sc.snm.epochs = 6;
  auto models = detect::specialize_stream(calib, sc, 9);
  models.snm->set_filter_degree(0.2);  // relaxed filtering for search recall

  const int kCrowd = 2;  // the query: scenes with at least 2 people

  // --- Brute force -----------------------------------------------------------
  std::printf("Brute-force scan (reference model on every frame)...\n");
  runtime::Stopwatch brute_watch;
  std::int64_t brute_hits = 0;
  {
    video::VideoReader reader(*stored);
    while (auto f = reader.next()) {
      if (models.reference->detect(f->image).count_target(cfg.target) >= kCrowd) {
        ++brute_hits;
      }
    }
  }
  const double brute_sec = brute_watch.elapsed_sec();

  // --- FFS-VA -----------------------------------------------------------------
  std::printf("FFS-VA scan (cascade in front of the reference model)...\n");
  runtime::Stopwatch ffs_watch;
  core::FfsVaConfig config;
  config.number_of_objects = kCrowd;
  core::FfsVaInstance instance(config);
  instance.add_stream(std::make_unique<video::StoredSource>(stored, 0), models);
  const auto stats = instance.run(/*online=*/false);
  const double ffs_sec = ffs_watch.elapsed_sec();

  // Group surviving frames into scenes (gaps > 1 s start a new scene).
  std::int64_t ffs_hits = 0;
  std::vector<std::pair<double, double>> scenes;
  for (const auto& ev : instance.outputs()) {
    if (ev.result.count_target(cfg.target) < kCrowd) continue;
    ++ffs_hits;
    if (scenes.empty() || ev.frame.pts_sec - scenes.back().second > 1.0) {
      scenes.push_back({ev.frame.pts_sec, ev.frame.pts_sec});
    } else {
      scenes.back().second = ev.frame.pts_sec;
    }
  }

  std::printf("\nFound %zu crowd scenes:\n", scenes.size());
  for (const auto& [from, to] : scenes) {
    std::printf("  %.1fs .. %.1fs\n", from, to);
  }

  const auto& s = stats.streams[0];
  std::printf("\n%-28s %10s %12s\n", "", "hit frames", "scan time");
  std::printf("%-28s %10lld %10.1f s\n", "brute force (all frames)",
              static_cast<long long>(brute_hits), brute_sec);
  std::printf("%-28s %10lld %10.1f s\n", "FFS-VA cascade",
              static_cast<long long>(ffs_hits), ffs_sec);
  std::printf("Speedup: %.2fx; reference model saw %.1f%% of the recording; "
              "frame recall %.1f%%\n",
              brute_sec / ffs_sec,
              100.0 * static_cast<double>(s.ref.in) / static_cast<double>(s.sdd.in),
              brute_hits ? 100.0 * static_cast<double>(ffs_hits) /
                               static_cast<double>(brute_hits)
                         : 100.0);
  return 0;
}
