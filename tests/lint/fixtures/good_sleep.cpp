// Clean fixture for ffsva_lint --self-test: both sanctioned shapes of a
// blocking sleep — a sliced polling loop whose cancellation check sits
// within the marker window, and a marked sleep whose bound is explained.
#include <chrono>
#include <thread>

bool stop_requested();

void fixture_sliced_sleep() {
  while (!stop_requested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

void fixture_marked_sleep() {
  // cancel-ok: fixture pacing sleep, bounded to one 10 ms tick.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
}
