file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_online_high_tor.dir/bench_fig4_online_high_tor.cpp.o"
  "CMakeFiles/bench_fig4_online_high_tor.dir/bench_fig4_online_high_tor.cpp.o.d"
  "bench_fig4_online_high_tor"
  "bench_fig4_online_high_tor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_online_high_tor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
