// Calibrated execution-cost models for the four pipeline models.
//
// The paper reports, on dual Xeon E5-2683v3 + 2x GTX1080:
//
//   SDD     ~100K FPS at 100x100 (CPU), resize 40 us   -> ~20K FPS effective
//   SNM     ~5K FPS at 50x50 (GPU), resize 150 us      -> ~2K FPS effective
//   T-YOLO  ~220 FPS at 416x416 (GPU), resize 400 us   -> ~200 FPS effective
//   YOLOv2  ~56-67 FPS (GPU); one GTX-class GPU sustains two 30-FPS streams
//   SNM model ~200 KB, T-YOLO ~1.2 GB (switch overhead motivates sharing)
//
// (Sections 3.2, 4.1 and the Figure 5 caption.) The discrete-event
// simulator charges these costs; the pipeline logic it exercises is the
// production code. A batch of n frames on a GPU model costs
//
//     switch (if the executing model changed) + setup + n * per_frame
//
// which yields the static-batch throughput growth and the dynamic-batch
// latency flatness of Figures 9-10.
#pragma once

namespace ffsva::detect {

struct ModelCost {
  double switch_ms = 0.0;       ///< Charged when the device's loaded model changes.
  double setup_us = 0.0;        ///< Per-batch dispatch overhead.
  double per_frame_us = 0.0;    ///< Marginal per-frame inference time.
  double resize_us = 0.0;       ///< CPU-side resize before this model.

  double batch_us(int n) const { return setup_us + per_frame_us * n; }
};

namespace calibrated {

/// SDD on a CPU core: 100K FPS kernel + 40 us resize (~20K FPS end-to-end).
inline ModelCost sdd() { return {0.0, 0.0, 10.0, 40.0}; }

/// SNM on GPU0: 200 us/frame, 150 us resize; ~2 ms weight upload when the
/// device switches between different streams' SNMs (~200 KB each) — the
/// cost dynamic batching amortizes.
inline ModelCost snm() { return {2.0, 100.0, 200.0, 150.0}; }

/// T-YOLO on GPU0, shared by all streams: 220 FPS, 400 us resize. Its
/// 1.2 GB of weights are loaded *once* and stay resident — that residency
/// is one of the two stated reasons for sharing one T-YOLO across streams
/// (Section 3.2.3; re-loading 1.2 GB per stream would cost ~85 ms each
/// time). The recurring switch cost here is only the context/activation
/// cost of alternating with SNM executions on the same GPU.
inline ModelCost tyolo() { return {2.5, 300.0, 4545.0, 400.0}; }

/// Full YOLOv2 on GPU1 (~56 FPS effective in the paper's pipeline).
inline ModelCost yolov2() { return {120.0, 500.0, 15500.0, 400.0}; }

/// Stored-video decode cost per frame on a CPU core. This is what caps the
/// offline single-stream throughput near the paper's 404 FPS.
inline double decode_us_per_frame() { return 2200.0; }

/// Live-capture ingest cost per frame (negligible next to decode).
inline double capture_us_per_frame() { return 120.0; }

}  // namespace calibrated

}  // namespace ffsva::detect
