// Multi-target SNM (paper Section 5.5, "Single Target Object"):
//
//   "In this paper, we assume that there is only one user-interested
//    target object for each video stream. If multiple target objects exist
//    in a video stream, the structure of the specialized network model
//    only needs to be changed to support the identification of all the
//    target objects in the video."
//
// MultiSnmFilter is that changed structure: the same CONV-CONV-FC trunk
// with one sigmoid head per target class (multi-label), trained with
// per-class BCE on reference-model labels. A frame passes if ANY class the
// user subscribed to clears its own t_pre.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "detect/preproc.hpp"
#include "image/image.hpp"
#include "nn/layers.hpp"
#include "video/frame.hpp"

namespace ffsva::detect {

struct MultiSnmConfig {
  int input_size = 50;
  int conv1_filters = 8;
  int conv2_filters = 16;
  double filter_degree = 0.5;
  double threshold_tail = 0.02;
  double c_low_relax = 0.75;
  int epochs = 10;
  int batch_size = 16;
  double lr = 0.02;
  double lr_decay = 0.85;
  int augment_shift = 4;
  bool augment_flip = true;
  double augment_scale = 0.30;
};

struct MultiSnmReport {
  double final_loss = 0.0;
  std::vector<double> val_accuracy;  ///< Per class.
  std::vector<double> c_low;
  std::vector<double> c_high;
};

class MultiSnmFilter {
 public:
  MultiSnmFilter(MultiSnmConfig config, std::vector<video::ObjectClass> targets,
                 const image::Image& background, std::uint64_t seed);

  int num_targets() const { return static_cast<int>(targets_.size()); }
  const std::vector<video::ObjectClass>& targets() const { return targets_; }

  /// Per-class probabilities, ordered as `targets()`.
  std::vector<double> predict(const image::Image& frame) const;

  /// Per-class t_pre (Section 4.2.1 formula applied per head).
  double t_pre(int target_index) const;

  /// A frame passes if any subscribed class clears its threshold.
  bool pass(const image::Image& frame) const;

  /// Train on frames with per-class labels: labels[i][k] is whether frame i
  /// contains class k (from the reference model). Thresholds selected per
  /// class on the held-out split.
  MultiSnmReport train(const std::vector<video::Frame>& frames,
                       const std::vector<std::vector<bool>>& labels,
                       double val_fraction = 0.25);

  void set_filter_degree(double fd);

 private:
  nn::Tensor preprocess_batch(const std::vector<const image::Image*>& frames) const;
  nn::Tensor augment(const nn::Tensor& base, runtime::Xoshiro256& rng) const;

  MultiSnmConfig config_;
  std::vector<video::ObjectClass> targets_;
  image::Image background_small_;
  mutable std::unique_ptr<nn::Sequential> net_;
  /// Warm buffers for the allocation-free predict path (one instance per
  /// stream stage thread, never called concurrently).
  mutable SnmScratch scratch_;
  std::vector<double> c_low_;
  std::vector<double> c_high_;
};

}  // namespace ffsva::detect
