#include "video/tor_schedule.hpp"

#include <algorithm>
#include <cmath>

namespace ffsva::video {

namespace {
constexpr double kTwoPi = 6.28318530717958647692;
}

TorSchedule::TorSchedule(TorScheduleConfig config, std::uint64_t seed)
    : config_(config) {
  if (config_.pattern == TorPattern::kBursty) {
    // Pre-draw surge onsets over four periods as a Poisson process.
    runtime::Xoshiro256 rng(seed ^ 0xb0b5ULL);
    const double horizon = 4.0 * config_.period_sec;
    const double rate_per_sec = config_.surge_rate_per_hour / 3600.0;
    double t = 0.0;
    while (t < horizon) {
      // Exponential inter-arrival.
      t += -std::log(1.0 - rng.uniform()) / std::max(1e-9, rate_per_sec);
      if (t < horizon) surge_starts_.push_back(t);
    }
  }
}

double TorSchedule::tor_at(double t_sec) const {
  double tor = config_.base_tor;
  switch (config_.pattern) {
    case TorPattern::kConstant:
      break;
    case TorPattern::kDiurnal: {
      // Trough at phase 0 (night), peak half a period later (midday).
      const double cycle = -std::cos(
          kTwoPi * (t_sec - config_.phase_sec) / config_.period_sec);
      tor = config_.base_tor * (1.0 + config_.amplitude * cycle);
      break;
    }
    case TorPattern::kBursty: {
      const auto it = std::upper_bound(surge_starts_.begin(), surge_starts_.end(), t_sec);
      if (it != surge_starts_.begin()) {
        const double onset = *(it - 1);
        if (t_sec - onset < config_.surge_len_sec) tor = config_.surge_tor;
      }
      break;
    }
  }
  return std::clamp(tor, 0.0, 1.0);
}

std::vector<TorSegment> TorSchedule::segments(double duration_sec,
                                              double segment_sec) const {
  std::vector<TorSegment> out;
  segment_sec = std::max(1.0, segment_sec);
  for (double t = 0.0; t < duration_sec; t += segment_sec) {
    TorSegment seg;
    seg.begin_sec = t;
    seg.end_sec = std::min(duration_sec, t + segment_sec);
    // Mean via midpoint sampling (the schedules are smooth or piecewise
    // constant at surge granularity).
    const int samples = 8;
    double acc = 0.0;
    for (int k = 0; k < samples; ++k) {
      const double u = (k + 0.5) / samples;
      acc += tor_at(seg.begin_sec + u * (seg.end_sec - seg.begin_sec));
    }
    seg.tor = acc / samples;
    out.push_back(seg);
  }
  return out;
}

double TorSchedule::mean_tor(double duration_sec) const {
  const auto segs = segments(duration_sec, duration_sec / 64.0);
  double acc = 0.0, total = 0.0;
  for (const auto& s : segs) {
    acc += s.tor * (s.end_sec - s.begin_sec);
    total += s.end_sec - s.begin_sec;
  }
  return total > 0 ? acc / total : 0.0;
}

}  // namespace ffsva::video
