// Fixture: two functions acquire the same pair of locks in opposite
// orders — the classic AB/BA deadlock the cycle check must catch.
#include "runtime/annotations.hpp"

using ffsva::runtime::Mutex;
using ffsva::runtime::MutexLock;

struct Ledger {
  Mutex a_;
  Mutex b_;

  void credit() {
    MutexLock la(a_);
    MutexLock lb(b_);
  }

  void debit() {
    MutexLock lb(b_);
    MutexLock la(a_);
  }
};
