// Wire framing (DESIGN.md §15): round-trips, incremental feeds, and the
// decoder's sticky rejection of garbage, foreign versions, and hostile
// lengths — a desynchronized connection dies, it never resyncs.
#include "net/wire.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

namespace ffsva::net {
namespace {

std::vector<WireFrame> feed_all(FrameDecoder& dec, const std::string& bytes,
                                bool* ok = nullptr) {
  std::vector<WireFrame> out;
  const bool r = dec.feed(bytes.data(), bytes.size(), out);
  if (ok != nullptr) *ok = r;
  return out;
}

TEST(Wire, RoundTripSingleFrame) {
  const std::string payload = "hello cluster";
  const std::string bytes = encode_frame(MsgType::kSnapshot, payload);
  FrameDecoder dec;
  bool ok = false;
  const auto frames = feed_all(dec, bytes, &ok);
  EXPECT_TRUE(ok);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].type, MsgType::kSnapshot);
  EXPECT_EQ(frames[0].payload, payload);
}

TEST(Wire, RoundTripManyFramesOneFeed) {
  std::string bytes;
  for (int i = 0; i < 16; ++i) {
    bytes += encode_frame(MsgType::kHeartbeat, std::string(i, 'x'));
  }
  FrameDecoder dec;
  bool ok = false;
  const auto frames = feed_all(dec, bytes, &ok);
  EXPECT_TRUE(ok);
  ASSERT_EQ(frames.size(), 16u);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(frames[static_cast<std::size_t>(i)].payload.size(),
              static_cast<std::size_t>(i));
  }
}

TEST(Wire, ByteAtATimeFeed) {
  const std::string payload(257, 'p');
  const std::string bytes = encode_frame(MsgType::kResults, payload) +
                            encode_frame(MsgType::kStop, "");
  FrameDecoder dec;
  std::vector<WireFrame> out;
  for (const char c : bytes) {
    ASSERT_TRUE(dec.feed(&c, 1, out));
  }
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].type, MsgType::kResults);
  EXPECT_EQ(out[0].payload, payload);
  EXPECT_EQ(out[1].type, MsgType::kStop);
  EXPECT_TRUE(out[1].payload.empty());
}

TEST(Wire, TruncatedFrameYieldsNothingUntilCompleted) {
  const std::string bytes = encode_frame(MsgType::kAssignStream, "abcdef");
  FrameDecoder dec;
  std::vector<WireFrame> out;
  // Header plus half the payload: parseable prefix, no complete frame.
  ASSERT_TRUE(dec.feed(bytes.data(), bytes.size() - 3, out));
  EXPECT_TRUE(out.empty());
  ASSERT_TRUE(dec.feed(bytes.data() + bytes.size() - 3, 3, out));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].payload, "abcdef");
}

TEST(Wire, GarbageMagicIsStickyDeath) {
  FrameDecoder dec;
  std::vector<WireFrame> out;
  const std::string garbage = "GET / HTTP/1.1\r\n\r\n";
  EXPECT_FALSE(dec.feed(garbage.data(), garbage.size(), out));
  EXPECT_EQ(dec.error(), FrameDecoder::Error::kBadMagic);
  EXPECT_TRUE(out.empty());
  // Even a pristine frame afterwards is refused: no resync by contract.
  const std::string good = encode_frame(MsgType::kHeartbeat, "");
  EXPECT_FALSE(dec.feed(good.data(), good.size(), out));
  EXPECT_TRUE(out.empty());
}

TEST(Wire, ForeignVersionRejected) {
  std::string bytes = encode_frame(MsgType::kHello, "v2 hello");
  // Patch the version field (bytes 4..5) to a future version.
  const std::uint16_t v2 = kWireVersion + 1;
  std::memcpy(bytes.data() + 4, &v2, sizeof(v2));
  FrameDecoder dec;
  std::vector<WireFrame> out;
  EXPECT_FALSE(dec.feed(bytes.data(), bytes.size(), out));
  EXPECT_EQ(dec.error(), FrameDecoder::Error::kBadVersion);
  EXPECT_TRUE(out.empty());
}

TEST(Wire, HostileLengthRejected) {
  std::string bytes = encode_frame(MsgType::kResults, "x");
  const std::uint32_t huge = kMaxFramePayload + 1;
  std::memcpy(bytes.data() + 8, &huge, sizeof(huge));
  FrameDecoder dec;
  std::vector<WireFrame> out;
  EXPECT_FALSE(dec.feed(bytes.data(), bytes.size(), out));
  EXPECT_EQ(dec.error(), FrameDecoder::Error::kOversized);
}

TEST(Wire, FuzzRandomBytesNeverYieldFrames) {
  // Deterministic pseudo-random garbage that never starts with the magic:
  // every decoder must either reject or wait for more bytes, and must not
  // produce a frame.
  std::uint64_t s = 0x9e3779b97f4a7c15ull;
  for (int round = 0; round < 64; ++round) {
    std::string bytes(64, '\0');
    for (auto& c : bytes) {
      s = s * 6364136223846793005ull + 1442695040888963407ull;
      c = static_cast<char>(s >> 56);
    }
    // Force a non-magic first word so the reject path is exercised.
    bytes[0] = 'Z';
    FrameDecoder dec;
    std::vector<WireFrame> out;
    dec.feed(bytes.data(), bytes.size(), out);
    EXPECT_TRUE(out.empty());
  }
}

TEST(Wire, ErrorToString) {
  EXPECT_STREQ(to_string(FrameDecoder::Error::kNone), "none");
  EXPECT_STREQ(to_string(FrameDecoder::Error::kBadMagic), "bad-magic");
  EXPECT_STREQ(to_string(FrameDecoder::Error::kBadVersion), "bad-version");
  EXPECT_STREQ(to_string(FrameDecoder::Error::kOversized), "oversized");
}

}  // namespace
}  // namespace ffsva::net
