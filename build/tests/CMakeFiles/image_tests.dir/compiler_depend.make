# Empty compiler generated dependencies file for image_tests.
# This may be replaced when dependencies are built.
