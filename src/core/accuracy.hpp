// Accuracy analysis (paper Sections 3.3 and 5.3).
//
// The paper's notion of accuracy is scene-level: "users are particularly
// concerned about missing scenes rather than missing frames"; a scene is
// caught if at least one of its frames survives the cascade. Frame-level
// false negatives are classified by run length (Table 2) because isolated
// or short runs do not lose the scene, while long runs — typically a
// partially-visible vehicle waiting at a stop line — may.
#pragma once

#include <cstdint>
#include <vector>

#include "video/scene.hpp"

namespace ffsva::core {

/// Table 2: frames of false negatives bucketed by the length of the
/// consecutive run they belong to.
struct ErrorRunStats {
  std::int64_t isolated_single = 0;     ///< Frames in runs of length 1.
  std::int64_t isolated_2_3 = 0;        ///< Frames in runs of length 2-3.
  std::int64_t continuous_under_30 = 0; ///< Frames in runs of length 4-29.
  std::int64_t continuous_30_plus = 0;  ///< Frames in runs of length >= 30.

  std::int64_t total() const {
    return isolated_single + isolated_2_3 + continuous_under_30 + continuous_30_plus;
  }
};

/// Classify the false-negative mask into Table-2 buckets.
ErrorRunStats classify_error_runs(const std::vector<bool>& false_negative);

/// Scene-level accuracy against the simulator's planned target intervals,
/// restricted to frames [begin, begin + pass.size()).
struct SceneAccuracy {
  int scenes = 0;           ///< Target scenes overlapping the window.
  int caught = 0;           ///< Scenes with at least one surviving frame.
  int lost = 0;
  double loss_rate = 0.0;   ///< lost / scenes.
};

SceneAccuracy scene_level_accuracy(const std::vector<video::SceneInterval>& intervals,
                                   const std::vector<bool>& pass,
                                   std::int64_t begin);

/// Frame-level error rate: false negatives / all frames (Section 3.3).
double frame_error_rate(const std::vector<bool>& false_negative);

}  // namespace ffsva::core
