// relaxed-ok: InflightCall slot fields (stream/frame/start/cancelled_at)
// ride the seq counter's acquire/release edges; the cancel flag itself is
// advisory (see runtime/cancel.hpp).
//
// Supervision primitives for the threaded pipeline engine: cooperative
// cancellation, stage heartbeats, and a watchdog thread.
//
// The engine's availability contract (DESIGN.md Section 9) is that a fault
// in one stream — a hung decoder, a throwing model — must stay a bounded,
// observable event instead of wedging the shared feedback queues. These
// three small pieces carry that contract:
//
//  * StopToken — a copyable handle on a shared stop flag. Copies alias the
//    same state, so a token handed to a worker thread outlives the object
//    that issued it (std::stop_token is not used because the engine needs
//    to pair the flag with queue closes, not with std::jthread).
//  * Heartbeat — a stage publishes busy()/idle() transitions around calls
//    that may hang (a source decode, a model forward). Blocking on a
//    bounded queue is *healthy* backpressure and is reported as idle; only
//    time spent busy counts toward a stall.
//  * Watchdog — one thread running a supplied check on a fixed tick. The
//    engine's check compares heartbeat busy-ages against the configured
//    stall timeout and quarantines the offending stream.
//  * InflightCall / ModelCallGuard — a per-worker registration slot for the
//    cancellable model call currently in flight, so the watchdog can
//    attribute a stall to a specific {worker, stream, frame} and cancel
//    exactly that call instead of only observing it.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>

#include "runtime/annotations.hpp"
#include "runtime/cancel.hpp"

namespace ffsva::runtime {

/// Milliseconds on the steady clock (monotonic; heartbeat timebase).
inline std::int64_t steady_now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Copyable handle on a shared cancellation flag. All copies observe the
/// same request; request_stop() is idempotent and thread-safe.
class StopToken {
 public:
  StopToken() : state_(std::make_shared<std::atomic<bool>>(false)) {}

  void request_stop() const { state_->store(true, std::memory_order_release); }
  bool stop_requested() const { return state_->load(std::memory_order_acquire); }

 private:
  std::shared_ptr<std::atomic<bool>> state_;
};

/// One stage's liveness signal. The stage marks busy() immediately before a
/// call that may hang and idle() when it returns; the watchdog reads
/// busy_age_ms() to detect a stall. Single-writer (the stage thread),
/// any-reader (the watchdog).
class Heartbeat {
 public:
  void busy() { busy_since_ms_.store(steady_now_ms(), std::memory_order_release); }
  void idle() { busy_since_ms_.store(-1, std::memory_order_release); }

  /// Milliseconds the stage has been inside its current busy section, or -1
  /// when the stage is idle (parked, blocked on backpressure, or finished).
  std::int64_t busy_age_ms() const {
    const std::int64_t t = busy_since_ms_.load(std::memory_order_acquire);
    return t < 0 ? -1 : steady_now_ms() - t;
  }

 private:
  std::atomic<std::int64_t> busy_since_ms_{-1};
};

/// One worker slot's cancellable in-flight model call. Single-writer for
/// begin()/end() (the stage thread owning the slot); the watchdog reads the
/// slot and may issue a cancel from its own thread. The sequence counter is
/// odd while a call is in flight; try_cancel() snapshots it before
/// cancelling so a cancel is only issued against the call it observed
/// running. A cancel can still land in the tiny window after that call
/// returns and the next one begins — the next call then unwinds and is
/// degraded like any cancelled call, so at most one extra frame is
/// affected; the escalation path tolerates that (documented in DESIGN.md
/// Section 14).
class InflightCall {
 public:
  /// Stage thread: register a call about to start. Resets the token.
  void begin(int stream, std::int64_t frame) {
    token_.reset();
    stream_.store(stream, std::memory_order_relaxed);
    frame_.store(frame, std::memory_order_relaxed);
    start_ms_.store(steady_now_ms(), std::memory_order_relaxed);
    seq_.fetch_add(1, std::memory_order_release);  // even -> odd: in flight
  }

  /// Stage thread: the call returned (normally or by unwinding).
  void end() {
    seq_.fetch_add(1, std::memory_order_release);  // odd -> even: idle
    start_ms_.store(-1, std::memory_order_relaxed);
  }

  /// The token a ModelCallGuard installs for the call's duration.
  const CancelToken& token() const { return token_; }

  /// Watchdog: cancel the in-flight call if it has been running for more
  /// than timeout_ms. Returns true when a cancel was issued.
  bool try_cancel(std::int64_t now_ms, std::int64_t timeout_ms) {
    const std::uint64_t s = seq_.load(std::memory_order_acquire);
    if ((s & 1U) == 0) return false;  // idle
    const std::int64_t start = start_ms_.load(std::memory_order_relaxed);
    if (start < 0 || now_ms - start <= timeout_ms) return false;
    if (token_.cancelled()) return false;  // already cancelled; don't recount
    cancelled_at_ms_.store(now_ms, std::memory_order_relaxed);
    token_.cancel();
    return true;
  }

  /// Stream the cancelled/in-flight call was serving (-1 = none recorded).
  int stream() const { return stream_.load(std::memory_order_relaxed); }

  /// When the watchdog issued the cancel (steady ms) — the start point of
  /// the time-to-recovery measurement. -1 until the first cancel.
  std::int64_t cancelled_at_ms() const {
    return cancelled_at_ms_.load(std::memory_order_relaxed);
  }

 private:
  CancelToken token_;
  std::atomic<std::uint64_t> seq_{0};
  std::atomic<std::int64_t> start_ms_{-1};
  std::atomic<std::int64_t> cancelled_at_ms_{-1};
  std::atomic<int> stream_{-1};
  std::atomic<std::int64_t> frame_{-1};
};

/// RAII guard around one model call: registers it with the worker's
/// InflightCall slot and installs the slot's token on the current thread so
/// kernel-level check_cancel() observes a watchdog cancel.
class ModelCallGuard {
 public:
  ModelCallGuard(InflightCall& call, int stream, std::int64_t frame)
      : call_(call), install_((call.begin(stream, frame), call.token())) {}
  ~ModelCallGuard() { call_.end(); }

  ModelCallGuard(const ModelCallGuard&) = delete;
  ModelCallGuard& operator=(const ModelCallGuard&) = delete;

 private:
  InflightCall& call_;
  ScopedCancelToken install_;
};

/// A periodic check on its own thread. start() is restartable; stop() is
/// idempotent and joins. The check runs outside the watchdog's lock, so it
/// may itself call stop-adjacent machinery (close queues, notify waiters)
/// without deadlocking the watchdog.
class Watchdog {
 public:
  Watchdog() = default;
  ~Watchdog() { stop(); }

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  void start(std::chrono::milliseconds tick, std::function<void()> check)
      FFSVA_EXCLUDES(mu_);
  void stop() FFSVA_EXCLUDES(mu_);

  bool running() const { return thread_.joinable(); }

 private:
  std::thread thread_;  ///< Managed by start()/stop() on the owner's thread.
  Mutex mu_{rank::kWatchdog, "Watchdog::mu_"};
  CondVar cv_;
  bool stopping_ FFSVA_GUARDED_BY(mu_) = false;
};

}  // namespace ffsva::runtime
