#include "detect/sdd.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "detect/fault_hook.hpp"
#include "image/ops.hpp"
#include "runtime/cancel.hpp"

namespace ffsva::detect {

const char* to_string(SddMetric m) {
  switch (m) {
    case SddMetric::kMse: return "MSE";
    case SddMetric::kNrmse: return "NRMSE";
    case SddMetric::kSad: return "SAD";
  }
  return "?";
}

SddFilter::SddFilter(SddConfig config, const image::Image& reference_background)
    : config_(config),
      // Keep color: a chromatic object (a red car on gray asphalt) can be
      // luma-neutral and invisible to a grayscale difference.
      reference_(
          image::resize_bilinear(reference_background, config.width, config.height)) {
  if (reference_.empty()) {
    throw std::invalid_argument("SddFilter: empty reference background");
  }
}

double SddFilter::distance(const image::Image& frame) const {
  FaultHook::on_call(FaultStage::kSdd);
  runtime::check_cancel();
  image::Image small = image::resize_bilinear(frame, config_.width, config_.height);
  if (small.channels() != reference_.channels()) {
    // Mixed gray/color inputs: fall back to luma on both sides.
    small = image::to_gray(small);
    const image::Image ref_gray = image::to_gray(reference_);
    switch (config_.metric) {
      case SddMetric::kMse: return image::mse(small, ref_gray);
      case SddMetric::kNrmse: return image::nrmse(small, ref_gray);
      case SddMetric::kSad: return image::sad(small, ref_gray);
    }
  }
  if (!config_.gain_compensate) {
    switch (config_.metric) {
      case SddMetric::kMse: return image::mse(small, reference_);
      case SddMetric::kNrmse: return image::nrmse(small, reference_);
      case SddMetric::kSad: return image::sad(small, reference_);
    }
    return 0.0;
  }
  // Gain-compensated distance: remove the per-channel mean frame-vs-
  // reference offset (global illumination / white balance) and measure
  // what is left (local content change).
  const std::uint8_t* a = small.data();
  const std::uint8_t* b = reference_.data();
  const std::size_t n = small.size_bytes();
  const int channels = small.channels();
  double mean[3] = {0.0, 0.0, 0.0};
  for (std::size_t i = 0; i < n; ++i) {
    mean[i % static_cast<std::size_t>(channels)] +=
        static_cast<double>(a[i]) - static_cast<double>(b[i]);
  }
  const double per_channel = static_cast<double>(n) / channels;
  for (int c = 0; c < channels; ++c) mean[c] /= per_channel;
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]) -
                     mean[i % static_cast<std::size_t>(channels)];
    acc += config_.metric == SddMetric::kSad ? std::abs(d) : d * d;
  }
  acc /= static_cast<double>(n);
  switch (config_.metric) {
    case SddMetric::kMse: return acc;
    case SddMetric::kNrmse: return std::sqrt(acc) / 255.0;
    case SddMetric::kSad: return acc;
  }
  return 0.0;
}

double SddFilter::calibrate(const std::vector<double>& distances,
                            const std::vector<bool>& is_target) {
  if (distances.size() != is_target.size() || distances.empty()) {
    throw std::invalid_argument("SddFilter::calibrate: bad inputs");
  }
  std::vector<double> target_d;
  std::vector<double> bg_d;
  for (std::size_t i = 0; i < distances.size(); ++i) {
    (is_target[i] ? target_d : bg_d).push_back(distances[i]);
  }
  if (target_d.empty()) {
    // No targets in the calibration window: be conservative, pass almost
    // everything above the noise floor of the observed distances.
    std::vector<double> all = distances;
    std::sort(all.begin(), all.end());
    config_.delta_diff = all[all.size() / 2] * 1.5;
    return config_.delta_diff;
  }
  std::sort(target_d.begin(), target_d.end());
  // Largest threshold keeping FN rate within budget: the fn_budget-quantile
  // of target distances (frames below the threshold would be missed).
  const auto idx = static_cast<std::size_t>(config_.fn_budget *
                                            static_cast<double>(target_d.size()));
  const double quantile = target_d[std::min(idx, target_d.size() - 1)];
  // Relaxed filtering: sit slightly below the selected threshold.
  double delta = quantile * config_.relax_factor;
  // ...and never above the background-anchored bound: beyond it we would be
  // betting that no future target frame is weaker than the weakest one the
  // calibration window happened to contain.
  if (!bg_d.empty()) {
    std::sort(bg_d.begin(), bg_d.end());
    const auto bg_idx = static_cast<std::size_t>(config_.bg_quantile *
                                                 static_cast<double>(bg_d.size() - 1));
    const double bg_bound = bg_d[bg_idx] * config_.bg_margin;
    delta = std::min(delta, std::max(bg_bound, 1e-9));
  }
  config_.delta_diff = delta;
  return config_.delta_diff;
}

double SddFilter::calibrate_on(const std::vector<video::Frame>& frames,
                               video::ObjectClass target) {
  std::vector<double> d;
  std::vector<bool> label;
  d.reserve(frames.size());
  label.reserve(frames.size());
  for (const auto& f : frames) {
    d.push_back(distance(f.image));
    label.push_back(f.gt.any_target(target));
  }
  return calibrate(d, label);
}

// --- compressed-domain SDD ---------------------------------------------------

const char* to_string(HintDecision d) {
  switch (d) {
    case HintDecision::kSkip: return "skip";
    case HintDecision::kPass: return "pass";
    case HintDecision::kFallback: return "fallback";
  }
  return "?";
}

namespace {

// Map a pixel-SDD distance into the space where the triangle inequality
// holds: MSE is a squared norm, NRMSE and SAD already are norms.
double to_norm(SddMetric metric, double distance) {
  const double d = distance < 0.0 ? 0.0 : distance;
  return metric == SddMetric::kMse ? std::sqrt(d) : d;
}

}  // namespace

CompressedSdd::CompressedSdd(SddMetric metric, double delta_diff, double hint_relax)
    : metric_(metric) {
  const double relax = std::clamp(hint_relax, 0.01, 1.0);
  thr_skip_ = to_norm(metric_, delta_diff * relax);
  thr_pass_ = to_norm(metric_, delta_diff / relax);
}

double CompressedSdd::residual_norm(const video::FrameHint& hint) const {
  // Peak-block statistics bound the aliasing hazard: the SDD resize can
  // sample a change confined to one grid cell at up to its local amplitude.
  float peak_energy = 0.0f, peak_sad = 0.0f;
  for (const auto& b : hint.blocks) {
    peak_energy = b.energy > peak_energy ? b.energy : peak_energy;
    peak_sad = b.sad > peak_sad ? b.sad : peak_sad;
  }
  switch (metric_) {
    case SddMetric::kMse:
      return std::max(std::sqrt(static_cast<double>(hint.mse)),
                      0.5 * std::sqrt(static_cast<double>(peak_energy)));
    case SddMetric::kNrmse:
      return std::max(std::sqrt(static_cast<double>(hint.mse)),
                      0.5 * std::sqrt(static_cast<double>(peak_energy))) /
             255.0;
    case SddMetric::kSad:
      return std::max(static_cast<double>(hint.sad),
                      0.5 * static_cast<double>(peak_sad));
  }
  return 0.0;
}

HintDecision CompressedSdd::decide(const video::FrameHint& hint) {
  if (anchor_norm_ < 0.0) return HintDecision::kFallback;
  const double r = residual_norm(hint);
  const double lo = std::max(0.0, anchor_norm_ - drift_ - r);
  const double hi = anchor_norm_ + drift_ + r;
  HintDecision d;
  if (hi < thr_skip_) {
    d = HintDecision::kSkip;
  } else if (lo > thr_pass_) {
    d = HintDecision::kPass;
  } else {
    return HintDecision::kFallback;
  }
  drift_ += r;  // the unmeasured frame becomes part of the uncertainty
  return d;
}

void CompressedSdd::anchor(double pixel_distance) {
  anchor_norm_ = to_norm(metric_, pixel_distance);
  drift_ = 0.0;
}

CompressedSddReport compressed_sdd_agreement(const video::StoredVideo& video,
                                             const SddFilter& sdd,
                                             double hint_relax) {
  CompressedSddReport r;
  CompressedSdd csdd(sdd.config().metric, sdd.config().delta_diff, hint_relax);
  video::VideoReader reader(video);
  for (std::int64_t i = 0; i < video.frame_count(); ++i) {
    const auto frame = reader.next();
    if (!frame) break;
    // The oracle decodes every frame; the engine would not — decisions are
    // deterministic functions of (hints, threshold), so verdicts match.
    const double dist = sdd.distance(frame->image);
    const bool truth = dist > sdd.config().delta_diff;
    bool predicted = truth;
    switch (csdd.decide(video.hint(i))) {
      case HintDecision::kSkip:
        ++r.skipped;
        predicted = false;
        break;
      case HintDecision::kPass:
        ++r.hint_passes;
        predicted = true;
        break;
      case HintDecision::kFallback:
        ++r.fallbacks;
        csdd.anchor(dist);
        break;
    }
    if (predicted != truth) ++r.disagreements;
    ++r.frames;
  }
  return r;
}

}  // namespace ffsva::detect
