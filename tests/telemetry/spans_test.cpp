// Trace spans: per-thread ring recording, the enable/disable toggle, ring
// overwrite bounds, multi-thread collection, and the chrome://tracing JSON
// exporter (validated with a small structural JSON parser — the exported
// document must load in chrome://tracing / Perfetto, so well-formedness is
// part of the contract).
#include "telemetry/spans.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace ffsva::telemetry {
namespace {

Span make_span(const char* name, Stage stage, std::int64_t t0, std::int64_t t1,
               int stream = 0, std::int64_t frame = -1, int batch = 0) {
  Span s;
  s.name = name;
  s.stage = stage;
  s.stream = stream;
  s.frame = frame;
  s.batch = batch;
  s.t_start_us = t0;
  s.t_end_us = t1;
  return s;
}

// ---------------------------------------------------------------------------
// Minimal JSON well-formedness checker (objects/arrays/strings/numbers/
// literals). Returns true iff the whole input is one valid JSON value.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& s) : s_(s) {}
  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool literal(const char* lit) {
    const std::size_t n = std::string(lit).size();
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }
  const std::string& s_;
  std::size_t pos_ = 0;
};
// ---------------------------------------------------------------------------

TEST(TraceBuffer, DisabledRecordIsNoOp) {
  TraceBuffer buf(8);
  EXPECT_FALSE(buf.enabled());
  buf.record(make_span("x", Stage::kSdd, 0, 1));
  EXPECT_TRUE(buf.collect().empty());
}

TEST(TraceBuffer, RecordCollectRoundTrip) {
  TraceBuffer buf(8);
  buf.enable();
  buf.record(make_span("decode", Stage::kPrefetch, 10, 20, /*stream=*/3,
                       /*frame=*/7));
  buf.record(make_span("snm.batch", Stage::kSnm, 5, 30, /*stream=*/-1,
                       /*frame=*/-1, /*batch=*/16));
  const auto spans = buf.collect();
  ASSERT_EQ(spans.size(), 2u);
  // Oldest (earliest start) first.
  EXPECT_STREQ(spans[0].name, "snm.batch");
  EXPECT_EQ(spans[0].batch, 16);
  EXPECT_STREQ(spans[1].name, "decode");
  EXPECT_EQ(spans[1].stream, 3);
  EXPECT_EQ(spans[1].frame, 7);
  // Both spans came from this thread: same recorder slot stamped in.
  EXPECT_EQ(spans[0].tid, spans[1].tid);
}

TEST(TraceBuffer, RingKeepsOnlyTheTail) {
  TraceBuffer buf(4);
  buf.enable();
  for (int i = 0; i < 10; ++i) {
    buf.record(make_span("s", Stage::kSdd, i, i + 1));
  }
  const auto spans = buf.collect();
  ASSERT_EQ(spans.size(), 4u);  // bounded by ring capacity
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(spans[static_cast<std::size_t>(i)].t_start_us, 6 + i);
  }
}

TEST(TraceBuffer, EnableResetsPreviousRun) {
  TraceBuffer buf(8);
  buf.enable();
  buf.record(make_span("old", Stage::kSdd, 0, 1));
  buf.disable();
  buf.enable();  // new run: old spans must not leak into the new trace
  EXPECT_TRUE(buf.collect().empty());
  buf.record(make_span("new", Stage::kSdd, 0, 1));
  ASSERT_EQ(buf.collect().size(), 1u);
  EXPECT_STREQ(buf.collect()[0].name, "new");
}

TEST(TraceBuffer, ManyThreadsRecordWithoutLoss) {
  TraceBuffer buf(1 << 12);
  buf.enable();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&buf, t] {
      for (int i = 0; i < kPerThread; ++i) {
        buf.record(make_span("w", Stage::kSdd, t * 1000 + i, t * 1000 + i + 1,
                             /*stream=*/t));
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto spans = buf.collect();
  EXPECT_EQ(spans.size(), static_cast<std::size_t>(kThreads) * kPerThread);
}

TEST(ScopedSpan, RecordsWithLateBatchSize) {
  TraceBuffer buf(8);
  buf.enable();
  {
    ScopedSpan span(buf, "tyolo.batch", Stage::kTyolo, /*stream=*/-1);
    span.set_batch(5);  // known only after the work
  }
  const auto spans = buf.collect();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].stage, Stage::kTyolo);
  EXPECT_EQ(spans[0].batch, 5);
  EXPECT_GE(spans[0].t_end_us, spans[0].t_start_us);
}

TEST(ScopedSpan, DisabledBufferRecordsNothing) {
  TraceBuffer buf(8);
  { ScopedSpan span(buf, "x", Stage::kSdd); }
  EXPECT_TRUE(buf.collect().empty());
}

TEST(ChromeTrace, ExportIsValidJsonWithAllStages) {
  TraceBuffer buf(64);
  buf.enable();
  buf.record(make_span("decode", Stage::kPrefetch, 0, 5, 0, 1));
  buf.record(make_span("sdd.filter", Stage::kSdd, 5, 9, 0, 1));
  buf.record(make_span("snm.batch", Stage::kSnm, 9, 20, -1, -1, 8));
  buf.record(make_span("tyolo.batch", Stage::kTyolo, 20, 33, -1, -1, 4));
  buf.record(make_span("ref.detect", Stage::kRef, 33, 50, 0, 1));

  std::ostringstream os;
  buf.write_chrome_trace(os);
  const std::string doc = os.str();

  EXPECT_TRUE(JsonChecker(doc).valid()) << doc;
  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(doc.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  for (const char* cat : {"prefetch", "sdd", "snm", "tyolo", "ref"}) {
    EXPECT_NE(doc.find("\"cat\":\"" + std::string(cat) + "\""),
              std::string::npos)
        << cat;
  }
  EXPECT_NE(doc.find("\"batch\":8"), std::string::npos);
  // Complete-event format with microsecond timestamps.
  EXPECT_NE(doc.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(doc.find("\"ts\":9"), std::string::npos);
  EXPECT_NE(doc.find("\"dur\":11"), std::string::npos);
}

TEST(ChromeTrace, ZeroLengthSpanGetsVisibleDuration) {
  TraceBuffer buf(8);
  buf.enable();
  buf.record(make_span("tick", Stage::kSupervise, 42, 42));
  std::ostringstream os;
  buf.write_chrome_trace(os);
  // dur is clamped to 1 us so the event renders in a viewer.
  EXPECT_NE(os.str().find("\"dur\":1"), std::string::npos);
  EXPECT_TRUE(JsonChecker(os.str()).valid());
}

}  // namespace
}  // namespace ffsva::telemetry
