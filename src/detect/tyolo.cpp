#include "detect/tyolo.hpp"

#include <algorithm>

#include "detect/fault_hook.hpp"
#include "image/ops.hpp"
#include "runtime/cancel.hpp"

namespace ffsva::detect {

TYoloDetector::TYoloDetector(TYoloConfig config, const image::Image& background)
    : config_(config),
      background_small_(
          image::resize_bilinear(background, config.input_size, config.input_size)),
      scale_x_(static_cast<double>(background.width()) / config.input_size),
      scale_y_(static_cast<double>(background.height()) / config.input_size) {}

DetectionResult TYoloDetector::detect(const image::Image& frame) const {
  FaultHook::on_call(FaultStage::kTyolo);
  runtime::check_cancel();
  DetectionResult out;
  // Plan-based resize into thread-local staging: a detector instance may be
  // shared across threads, so the warm buffers live per thread, not per
  // instance. Steady state (fixed frame geometry) resizes allocation-free.
  static thread_local image::ResizePlan plan;
  static thread_local image::Image small;
  plan.ensure(frame.width(), frame.height(), config_.input_size, config_.input_size);
  image::resize_bilinear_into(frame, plan, small);
  const auto comps = foreground_components(small, background_small_, config_.segmentation);

  // Grid occupancy: at most boxes_per_cell detections per cell.
  const int cell_px = std::max(1, config_.input_size / config_.grid);
  std::vector<int> cell_load(static_cast<std::size_t>(config_.grid) * config_.grid, 0);

  for (const auto& c : comps) {
    const int gx = std::clamp(c.box.cx() / cell_px, 0, config_.grid - 1);
    const int gy = std::clamp(c.box.cy() / cell_px, 0, config_.grid - 1);
    int& load = cell_load[static_cast<std::size_t>(gy) * config_.grid + gx];
    if (load >= config_.boxes_per_cell) continue;  // cell saturated
    ++load;
    Detection d = classify_component(c, config_.input_size, config_.input_size,
                                     config_.segmentation.min_pixels,
                                     config_.classifier);
    // Map the box back to frame coordinates.
    d.box = image::Box{static_cast<int>(d.box.x0 * scale_x_),
                       static_cast<int>(d.box.y0 * scale_y_),
                       static_cast<int>(d.box.x1 * scale_x_),
                       static_cast<int>(d.box.y1 * scale_y_)};
    if (d.confidence >= config_.confidence_threshold) out.detections.push_back(d);
  }
  return out;
}

}  // namespace ffsva::detect
