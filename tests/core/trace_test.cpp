#include "core/trace.hpp"

#include <gtest/gtest.h>

namespace ffsva::core {
namespace {

FrameRecord rec(double sdd, double snm, int ty, int ref) {
  FrameRecord r;
  r.sdd_distance = sdd;
  r.snm_score = snm;
  r.tyolo_count = ty;
  r.ref_count = ref;
  r.ref_positive = ref >= 1;
  return r;
}

const CascadeThresholds kT{/*sdd_delta=*/10.0, /*t_pre=*/0.5, /*number_of_objects=*/1};

TEST(ApplyCascade, StageGatingOrder) {
  EXPECT_EQ(apply_cascade(rec(5, 0.9, 3, 1), kT), FilteredAt::kSdd);
  EXPECT_EQ(apply_cascade(rec(50, 0.2, 3, 1), kT), FilteredAt::kSnm);
  EXPECT_EQ(apply_cascade(rec(50, 0.9, 0, 1), kT), FilteredAt::kTyolo);
  EXPECT_EQ(apply_cascade(rec(50, 0.9, 2, 1), kT), FilteredAt::kNone);
}

TEST(ApplyCascade, BoundaryConditions) {
  // SDD passes strictly above delta; SNM passes at or above t_pre;
  // T-YOLO passes at or above NumberofObjects.
  EXPECT_EQ(apply_cascade(rec(10.0, 0.9, 1, 1), kT), FilteredAt::kSdd);
  EXPECT_EQ(apply_cascade(rec(10.01, 0.5, 1, 1), kT), FilteredAt::kNone);
  EXPECT_EQ(apply_cascade(rec(10.01, 0.4999, 1, 1), kT), FilteredAt::kSnm);
  CascadeThresholds t2 = kT;
  t2.number_of_objects = 2;
  EXPECT_EQ(apply_cascade(rec(50, 0.9, 1, 1), t2), FilteredAt::kTyolo);
  EXPECT_EQ(apply_cascade(rec(50, 0.9, 2, 1), t2), FilteredAt::kNone);
}

TEST(EvaluateTrace, CountsStagesAndErrors) {
  std::vector<FrameRecord> records{
      rec(5, 0.0, 0, 0),   // background, filtered by SDD, ref negative
      rec(50, 0.2, 0, 0),  // motion, filtered by SNM, ref negative
      rec(50, 0.9, 0, 1),  // target missed by T-YOLO -> false negative
      rec(50, 0.9, 2, 1),  // survives
      rec(5, 0.0, 0, 1),   // target missed by SDD -> false negative
  };
  const TraceStats s = evaluate_trace(records, kT);
  EXPECT_EQ(s.total, 5);
  EXPECT_EQ(s.sdd_pass, 3);
  EXPECT_EQ(s.snm_pass, 2);
  EXPECT_EQ(s.output, 1);
  EXPECT_EQ(s.ref_positive, 3);
  EXPECT_EQ(s.false_negative, 2);
  EXPECT_DOUBLE_EQ(s.error_rate, 0.4);
  EXPECT_DOUBLE_EQ(s.output_rate, 0.2);
}

TEST(EvaluateTrace, EmptyTrace) {
  const TraceStats s = evaluate_trace({}, kT);
  EXPECT_EQ(s.total, 0);
  EXPECT_EQ(s.error_rate, 0.0);
}

TEST(Masks, ConsistentWithEvaluate) {
  std::vector<FrameRecord> records{rec(50, 0.9, 1, 1), rec(5, 0, 0, 1),
                                   rec(50, 0.9, 0, 0)};
  const auto fn = false_negative_mask(records, kT);
  const auto pass = pass_mask(records, kT);
  ASSERT_EQ(fn.size(), 3u);
  EXPECT_FALSE(fn[0]);
  EXPECT_TRUE(fn[1]);
  EXPECT_FALSE(fn[2]);  // filtered but ref-negative: not an error
  EXPECT_TRUE(pass[0]);
  EXPECT_FALSE(pass[1]);
  EXPECT_FALSE(pass[2]);
}

TEST(Sweep, RaisingFilterDegreeMonotonicallyShrinksOutput) {
  // The Figure-7 property as a pure threshold computation: larger t_pre can
  // only filter more.
  std::vector<FrameRecord> records;
  for (int i = 0; i < 100; ++i) {
    records.push_back(rec(50, i / 100.0, 1, i % 3 == 0 ? 1 : 0));
  }
  std::int64_t prev_output = 101;
  for (double t_pre : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    CascadeThresholds t = kT;
    t.t_pre = t_pre;
    const auto s = evaluate_trace(records, t);
    EXPECT_LE(s.output, prev_output);
    prev_output = s.output;
  }
}

TEST(Sweep, RaisingNumberOfObjectsMonotone) {
  std::vector<FrameRecord> records;
  for (int i = 0; i < 60; ++i) records.push_back(rec(50, 0.9, i % 5, 1));
  std::int64_t prev_output = 61;
  std::int64_t prev_fn = -1;
  for (int n = 1; n <= 5; ++n) {
    CascadeThresholds t = kT;
    t.number_of_objects = n;
    const auto s = evaluate_trace(records, t);
    EXPECT_LE(s.output, prev_output);
    EXPECT_GE(s.false_negative, prev_fn);
    prev_output = s.output;
    prev_fn = s.false_negative;
  }
}

}  // namespace
}  // namespace ffsva::core
