// relaxed-ok: the NetCounters byte tallies printed in the sched summary are
// monotonic telemetry; nothing orders other memory against their loads.
// ffsva_node: the multi-process scale-out binary (DESIGN.md §15).
//
//   ffsva_node serve --port 0 --node-id 0 [--uds /tmp/n0.sock]
//       One cluster node: a serve-mode engine behind the control socket.
//       With --port 0 the kernel picks the port; the resolved endpoint is
//       printed as one JSON line on stdout (the smoke harness reads it).
//
//   ffsva_node sched --node 127.0.0.1:7001 --node 127.0.0.1:7002
//              --streams 16 --frames 400 [--force-migration-at 2]
//              [--verify-local]
//       The cluster scheduler: places streams across the nodes, polls
//       snapshots, re-forwards under load, and reports merged results.
//       --verify-local additionally runs the same specs single-process and
//       fails unless the per-frame verdicts match bit-identically.
//
//   ffsva_node local --streams 16 --frames 400
//       The single-process reference alone (prints per-stream verdicts).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "node/cluster_scheduler.hpp"
#include "node/node_server.hpp"

namespace {

using namespace ffsva;

[[noreturn]] void usage_and_exit(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s serve [--host H] [--port P] [--uds PATH] [--node-id K]\n"
      "                [--max-streams N] [--sdd-workers W] [--online]\n"
      "                [--metrics-out PATH] [--label S]\n"
      "       %s sched --node H:P [--node H:P ...] | --uds PATH [--uds ...]\n"
      "                [--streams N] [--frames F] [--calib C]\n"
      "                [--width W] [--height H] [--snapshot-interval-ms MS]\n"
      "                [--force-migration-at SEC] [--deadline SEC]\n"
      "                [--verify-local] [--verbose]\n"
      "       %s local [--streams N] [--frames F] [--calib C]\n"
      "                [--width W] [--height H]\n",
      argv0, argv0, argv0);
  std::exit(2);
}

const char* need_value(int argc, char** argv, int i) {
  if (i + 1 >= argc) {
    std::fprintf(stderr, "%s: missing value for %s\n", argv[0], argv[i]);
    std::exit(2);
  }
  return argv[i + 1];
}

net::Endpoint parse_hostport(const std::string& hp) {
  const auto colon = hp.rfind(':');
  if (colon == std::string::npos) {
    std::fprintf(stderr, "bad --node endpoint (want host:port): %s\n",
                 hp.c_str());
    std::exit(2);
  }
  return net::Endpoint::tcp(hp.substr(0, colon),
                            std::atoi(hp.c_str() + colon + 1));
}

int cmd_serve(int argc, char** argv) {
  node::NodeOptions opts;
  std::string host = "127.0.0.1";
  int port = 0;
  std::string uds;
  for (int i = 2; i < argc; ++i) {
    const char* a = argv[i];
    if (!std::strcmp(a, "--host")) {
      host = need_value(argc, argv, i++);
    } else if (!std::strcmp(a, "--port")) {
      port = std::atoi(need_value(argc, argv, i++));
    } else if (!std::strcmp(a, "--uds")) {
      uds = need_value(argc, argv, i++);
    } else if (!std::strcmp(a, "--node-id")) {
      opts.node_id = static_cast<std::uint32_t>(
          std::atoi(need_value(argc, argv, i++)));
    } else if (!std::strcmp(a, "--max-streams")) {
      opts.max_streams = std::atoi(need_value(argc, argv, i++));
    } else if (!std::strcmp(a, "--sdd-workers")) {
      opts.config.sdd_workers = std::atoi(need_value(argc, argv, i++));
    } else if (!std::strcmp(a, "--online")) {
      opts.online = true;
    } else if (!std::strcmp(a, "--metrics-out")) {
      opts.metrics_path = need_value(argc, argv, i++);
    } else if (!std::strcmp(a, "--label")) {
      opts.metrics_label = need_value(argc, argv, i++);
    } else {
      usage_and_exit(argv[0]);
    }
  }
  opts.listen = uds.empty() ? net::Endpoint::tcp(host, port)
                            : net::Endpoint::uds(uds);
  const std::uint32_t node_id = opts.node_id;
  node::NodeServer server(std::move(opts));
  if (!server.start()) {
    std::fprintf(stderr, "%s: cannot bind listener\n", argv[0]);
    return 1;
  }
  // The resolved endpoint, for harnesses that asked for --port 0.
  if (uds.empty()) {
    std::printf("{\"node_id\":%u,\"port\":%d}\n", node_id, server.port());
  } else {
    std::printf("{\"node_id\":%u,\"uds\":\"%s\"}\n", node_id, uds.c_str());
  }
  std::fflush(stdout);
  server.serve();
  const auto& health = server.stats().health;
  std::fprintf(stderr,
               "ffsva_node: done (handoffs in=%llu out=%llu, quarantined=%d)\n",
               static_cast<unsigned long long>(server.handoffs_in()),
               static_cast<unsigned long long>(server.handoffs_out()),
               health.quarantined_streams);
  return 0;
}

int cmd_sched(int argc, char** argv) {
  std::vector<net::Endpoint> nodes;
  int streams = 4;
  std::uint64_t frames = 200;
  std::uint32_t calib = 20;
  int width = 96, height = 72;
  node::SchedOptions opts;
  bool verify_local = false;
  for (int i = 2; i < argc; ++i) {
    const char* a = argv[i];
    if (!std::strcmp(a, "--node")) {
      nodes.push_back(parse_hostport(need_value(argc, argv, i++)));
    } else if (!std::strcmp(a, "--uds")) {
      nodes.push_back(net::Endpoint::uds(need_value(argc, argv, i++)));
    } else if (!std::strcmp(a, "--streams")) {
      streams = std::atoi(need_value(argc, argv, i++));
    } else if (!std::strcmp(a, "--frames")) {
      frames = static_cast<std::uint64_t>(
          std::atoll(need_value(argc, argv, i++)));
    } else if (!std::strcmp(a, "--calib")) {
      calib = static_cast<std::uint32_t>(
          std::atoi(need_value(argc, argv, i++)));
    } else if (!std::strcmp(a, "--width")) {
      width = std::atoi(need_value(argc, argv, i++));
    } else if (!std::strcmp(a, "--height")) {
      height = std::atoi(need_value(argc, argv, i++));
    } else if (!std::strcmp(a, "--snapshot-interval-ms")) {
      opts.snapshot_interval_ms = std::atoi(need_value(argc, argv, i++));
    } else if (!std::strcmp(a, "--force-migration-at")) {
      opts.force_migration_at_sec = std::atof(need_value(argc, argv, i++));
    } else if (!std::strcmp(a, "--deadline")) {
      opts.deadline_sec = std::atof(need_value(argc, argv, i++));
    } else if (!std::strcmp(a, "--verify-local")) {
      verify_local = true;
    } else if (!std::strcmp(a, "--verbose")) {
      opts.verbose = true;
    } else {
      usage_and_exit(argv[0]);
    }
  }
  if (nodes.empty()) usage_and_exit(argv[0]);

  const core::FfsVaConfig config;
  const auto specs = node::make_specs(streams, frames, calib, width, height);
  node::ClusterScheduler sched(nodes, config, opts);
  const node::ClusterReport report = sched.run(specs);

  bool verified = true;
  if (verify_local) {
    const auto local = node::run_local(specs, config);
    for (const auto& ref : local) {
      const auto* got = report.outcome(ref.stream_id);
      if (got == nullptr || got->emitted != ref.emitted) {
        verified = false;
        std::fprintf(stderr,
                     "verify: stream %u mismatch (cluster %zu vs local %zu "
                     "survivors)\n",
                     ref.stream_id, got ? got->emitted.size() : 0,
                     ref.emitted.size());
      }
    }
  }

  std::printf(
      "{\"ok\":%s,\"streams\":%d,\"nodes\":%zu,\"emitted\":%llu,"
      "\"handoffs\":%d,\"handoff_p99_ms\":%.1f,\"wall_sec\":%.2f,"
      "\"snapshot_polls\":%llu,\"bytes_tx\":%llu,\"bytes_rx\":%llu,"
      "\"verified\":%s}\n",
      report.ok ? "true" : "false", streams, nodes.size(),
      static_cast<unsigned long long>(report.total_emitted), report.handoffs,
      report.handoff_p99_ms(), report.wall_sec,
      static_cast<unsigned long long>(report.snapshot_frames),
      static_cast<unsigned long long>(
          sched.counters().bytes_tx.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(
          sched.counters().bytes_rx.load(std::memory_order_relaxed)),
      verify_local ? (verified ? "true" : "false") : "null");
  return report.ok && verified ? 0 : 1;
}

int cmd_local(int argc, char** argv) {
  int streams = 4;
  std::uint64_t frames = 200;
  std::uint32_t calib = 20;
  int width = 96, height = 72;
  for (int i = 2; i < argc; ++i) {
    const char* a = argv[i];
    if (!std::strcmp(a, "--streams")) {
      streams = std::atoi(need_value(argc, argv, i++));
    } else if (!std::strcmp(a, "--frames")) {
      frames = static_cast<std::uint64_t>(
          std::atoll(need_value(argc, argv, i++)));
    } else if (!std::strcmp(a, "--calib")) {
      calib = static_cast<std::uint32_t>(
          std::atoi(need_value(argc, argv, i++)));
    } else if (!std::strcmp(a, "--width")) {
      width = std::atoi(need_value(argc, argv, i++));
    } else if (!std::strcmp(a, "--height")) {
      height = std::atoi(need_value(argc, argv, i++));
    } else {
      usage_and_exit(argv[0]);
    }
  }
  const core::FfsVaConfig config;
  const auto specs = node::make_specs(streams, frames, calib, width, height);
  const auto local = node::run_local(specs, config);
  std::uint64_t total = 0;
  std::printf("{\"streams\":[");
  for (std::size_t i = 0; i < local.size(); ++i) {
    total += local[i].emitted.size();
    std::printf("%s{\"id\":%u,\"ingested\":%llu,\"emitted\":%zu}",
                i ? "," : "", local[i].stream_id,
                static_cast<unsigned long long>(local[i].ingested),
                local[i].emitted.size());
  }
  std::printf("],\"total_emitted\":%llu}\n",
              static_cast<unsigned long long>(total));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage_and_exit(argv[0]);
  if (!std::strcmp(argv[1], "serve")) return cmd_serve(argc, argv);
  if (!std::strcmp(argv[1], "sched")) return cmd_sched(argc, argv);
  if (!std::strcmp(argv[1], "local")) return cmd_local(argc, argv);
  usage_and_exit(argv[0]);
}
