#include "image/draw.hpp"

#include <algorithm>
#include <cmath>

namespace ffsva::image {

namespace {
void put(Image& img, int x, int y, Rgb color) {
  if (!img.in_bounds(x, y)) return;
  if (img.channels() == 1) {
    img.at(x, y) = static_cast<std::uint8_t>((77 * color.r + 150 * color.g + 29 * color.b) >> 8);
  } else {
    img.at(x, y, 0) = color.r;
    img.at(x, y, 1) = color.g;
    img.at(x, y, 2) = color.b;
  }
}
}  // namespace

void fill_rect(Image& img, const Box& rect, Rgb color) {
  const Box r = rect.clip(img.width(), img.height());
  for (int y = r.y0; y < r.y1; ++y) {
    for (int x = r.x0; x < r.x1; ++x) put(img, x, y, color);
  }
}

void fill_ellipse(Image& img, int cx, int cy, int rx, int ry, Rgb color) {
  if (rx <= 0 || ry <= 0) return;
  const int x0 = std::max(0, cx - rx), x1 = std::min(img.width(), cx + rx + 1);
  const int y0 = std::max(0, cy - ry), y1 = std::min(img.height(), cy + ry + 1);
  const double inv_rx2 = 1.0 / (static_cast<double>(rx) * rx);
  const double inv_ry2 = 1.0 / (static_cast<double>(ry) * ry);
  for (int y = y0; y < y1; ++y) {
    for (int x = x0; x < x1; ++x) {
      const double dx = x - cx, dy = y - cy;
      if (dx * dx * inv_rx2 + dy * dy * inv_ry2 <= 1.0) put(img, x, y, color);
    }
  }
}

void fill_vertical_gradient(Image& img, Rgb top, Rgb bottom) {
  const int h = img.height();
  for (int y = 0; y < h; ++y) {
    const double t = h > 1 ? static_cast<double>(y) / (h - 1) : 0.0;
    const Rgb c{static_cast<std::uint8_t>(top.r + t * (bottom.r - top.r)),
                static_cast<std::uint8_t>(top.g + t * (bottom.g - top.g)),
                static_cast<std::uint8_t>(top.b + t * (bottom.b - top.b))};
    for (int x = 0; x < img.width(); ++x) put(img, x, y, c);
  }
}

void apply_gain(Image& img, double gain) {
  std::uint8_t* p = img.data();
  const std::size_t n = img.size_bytes();
  for (std::size_t i = 0; i < n; ++i) {
    p[i] = static_cast<std::uint8_t>(std::clamp(p[i] * gain + 0.5, 0.0, 255.0));
  }
}

void fill_band(Image& img, int y0, int y1, Rgb color) {
  fill_rect(img, Box{0, y0, img.width(), y1}, color);
}

void blend_rect(Image& img, const Box& rect, Rgb color, double alpha) {
  alpha = std::clamp(alpha, 0.0, 1.0);
  const Box r = rect.clip(img.width(), img.height());
  for (int y = r.y0; y < r.y1; ++y) {
    for (int x = r.x0; x < r.x1; ++x) {
      if (img.channels() == 1) {
        const double gray = (77 * color.r + 150 * color.g + 29 * color.b) / 256.0;
        img.at(x, y) = static_cast<std::uint8_t>(img.at(x, y) * (1 - alpha) + gray * alpha);
      } else {
        img.at(x, y, 0) = static_cast<std::uint8_t>(img.at(x, y, 0) * (1 - alpha) + color.r * alpha);
        img.at(x, y, 1) = static_cast<std::uint8_t>(img.at(x, y, 1) * (1 - alpha) + color.g * alpha);
        img.at(x, y, 2) = static_cast<std::uint8_t>(img.at(x, y, 2) * (1 - alpha) + color.b * alpha);
      }
    }
  }
}

}  // namespace ffsva::image
