// In-memory stored-video codec (temporal delta + run-length coding).
//
// The paper's offline mode reads a 55 GB day-long video file and its
// headline offline throughput (404 FPS) is bounded by the CPU-side
// prefetch/decode path, not by the GPU filters. To reproduce that path we
// store synthetic streams in a simple but real predictive codec:
//
//  * every `keyframe_interval`-th frame is coded standalone (delta against
//    a zero frame), the rest against the previous frame (mod-256 residual);
//  * residual planes are run-length coded: long zero runs (static
//    background) collapse to a few bytes, so compression genuinely tracks
//    scene activity;
//  * decoding is sequential per GOP with random access at keyframes —
//    the same access pattern a real surveillance recording gives a reader.
//
// The encoder also records a per-frame, per-block residual summary
// (`FrameHint`) in the bitstream index: RLE zero-run coverage plus residual
// energy on a coarse grid. A reader can consult it *before* decoding —
// the compressed-domain fast path `detect::CompressedSdd` builds on
// (DESIGN.md §13).
//
// Ground truth travels uncompressed next to the bitstream (it is evaluation
// metadata, not pixels).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "video/frame.hpp"

namespace ffsva::video {

struct CodecStats {
  std::size_t raw_bytes = 0;
  std::size_t encoded_bytes = 0;
  double compression_ratio() const {
    return encoded_bytes ? static_cast<double>(raw_bytes) / encoded_bytes : 0.0;
  }
};

/// Edge (in frame pixels) of one cell of the coarse hint grid.
inline constexpr int kHintBlockEdge = 16;

/// Per-block residual summary (one entry per kHintBlockEdge-square cell,
/// channels folded together). All statistics describe the *reconstruction
/// delta* rec(f) - rec(f-1) — the pixel change a decoder would observe —
/// not the raw coded bytes, so they are exact even for keyframes (whose
/// coded residual is against a zero frame) and deadzoned pixels.
struct BlockHint {
  float energy = 0.0f;     ///< mean squared delta per byte
  float sad = 0.0f;        ///< mean |delta| per byte
  float zero_frac = 1.0f;  ///< fraction of unchanged bytes (zero-run coverage)
};

/// Frame-level residual summary, recorded at encode time in the bitstream
/// index next to offsets/sizes. Reading it costs no pixel work — it is what
/// the compressed-domain SDD consults before deciding whether to decode.
struct FrameHint {
  bool keyframe = false;   ///< coded standalone (predictive chain restart)
  std::int32_t grid_w = 0; ///< hint grid width  (ceil(width  / kHintBlockEdge))
  std::int32_t grid_h = 0; ///< hint grid height (ceil(height / kHintBlockEdge))
  float zero_frac = 1.0f;  ///< whole-frame fraction of unchanged bytes
  float mse = 0.0f;        ///< mean squared reconstruction delta per byte
  float sad = 0.0f;        ///< mean absolute reconstruction delta per byte
  std::vector<BlockHint> blocks;  ///< row-major grid_h x grid_w

  /// Largest per-block energy — how *concentrated* the frame's change is.
  /// A small bright object barely moves frame-level MSE but lights up one
  /// block; the conservative band uses this to force pixel fallback.
  float max_block_energy() const;
};

class StoredVideo {
 public:
  /// Encode a sequence of frames (all must share one shape).
  ///
  /// `deadzone`: residuals with |difference| <= deadzone are coded as zero
  /// (near-lossless mode; 0 = lossless). Sensor noise otherwise defeats
  /// temporal prediction entirely — the same reason every real surveillance
  /// codec quantizes. The encoder predicts from its own *reconstruction*,
  /// so error never exceeds the deadzone regardless of GOP length.
  static StoredVideo encode(const std::vector<Frame>& frames,
                            int keyframe_interval = 32, int deadzone = 0);

  std::int64_t frame_count() const { return static_cast<std::int64_t>(offsets_.size()); }
  int width() const { return width_; }
  int height() const { return height_; }
  int channels() const { return channels_; }
  int keyframe_interval() const { return keyframe_interval_; }
  CodecStats stats() const;

  /// The frame's residual summary (valid for 0 <= index < frame_count()).
  const FrameHint& hint(std::int64_t index) const {
    return hints_[static_cast<std::size_t>(index)];
  }
  const std::vector<FrameHint>& hints() const { return hints_; }

  friend class VideoReader;

 private:
  int width_ = 0, height_ = 0, channels_ = 0;
  int keyframe_interval_ = 32;
  std::vector<std::uint8_t> bitstream_;
  std::vector<std::size_t> offsets_;   ///< Start of each frame's packet.
  std::vector<std::size_t> sizes_;     ///< Packet length per frame.
  std::vector<FrameHint> hints_;       ///< Residual summaries (index data).
  std::vector<GroundTruth> gt_;        ///< Sidecar ground truth.
  std::vector<double> pts_;
};

/// Sequential reader with keyframe seeking. Decoding does real per-pixel
/// work, which is what gives the offline prefetch stage its CPU cost.
///
/// Reconstruction state advances *lazily*: skip_next() and seek() only move
/// the cursor; pixels are reconstructed when next() actually needs them, by
/// re-syncing at the last keyframe at or before the target (or replaying
/// residuals if the live state is closer). Skipping whole GOPs therefore
/// costs no pixel work at all — the invariant DESIGN.md §13 relies on.
class VideoReader {
 public:
  explicit VideoReader(const StoredVideo& video, int stream_id = 0);

  /// Next frame, or nullopt at end of stream.
  std::optional<Frame> next();

  /// The not-yet-decoded residual summary of the frame the following next()
  /// would return, or nullptr at end of stream. Costs no pixel work.
  const FrameHint* peek_hint() const;

  /// Advance past the upcoming frame without reconstructing it (the hint
  /// said SDD would drop it). Returns false at end of stream. The skipped
  /// frame's pixels are never materialized; the predictive chain stays
  /// valid because the next next() re-syncs lazily.
  bool skip_next();

  /// Seek so that the following next() returns frame `index` (reconstruction
  /// happens lazily at that next(), from the preceding keyframe).
  void seek(std::int64_t index);

  std::int64_t position() const { return next_index_; }

 private:
  void decode_into(std::int64_t index);
  void materialize(std::int64_t index);

  const StoredVideo& video_;
  int stream_id_;
  std::int64_t next_index_ = 0;
  std::int64_t state_index_ = -1;  ///< Frame held in previous_ (-1: none).
  image::Image previous_;          ///< Reconstruction state.
};

}  // namespace ffsva::video
