// Deterministic fault injection for frame sources — the test and bench
// harness for the engine's supervision layer (DESIGN.md Section 9).
//
// Wraps any FrameSource and perturbs its output with the failure modes a
// real camera fleet exhibits: transient decode errors, fatal session
// drops, hard stalls inside next(), latency spikes, premature end of
// stream, and corrupt frames (full-size noise or zero-size truncation).
// Every stochastic decision draws from a seeded xoshiro256**, so a given
// (plan, seed) pair replays the identical fault sequence — fault runs are
// as reproducible as clean ones.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "runtime/rng.hpp"
#include "video/source.hpp"

namespace ffsva::video {

/// What to inject and when. Index-pinned faults (`*_at`) count next()
/// invocations on this wrapper (not inner frame indices), so a fault fires
/// at a reproducible point regardless of earlier stochastic faults.
struct FaultPlan {
  // Stochastic, per-call probabilities.
  double p_transient = 0.0;      ///< Throw a transient SourceError (decode error).
  double p_latency_spike = 0.0;  ///< Sleep latency_spike_ms before decoding.
  double p_corrupt = 0.0;        ///< Replace the frame's pixels with noise.
  double p_truncated = 0.0;      ///< Emit a zero-size frame (truncated decode).
  int latency_spike_ms = 5;

  // Index-pinned, one-shot faults (-1 = never).
  std::int64_t transient_at = -1;      ///< One transient error at this call.
  std::int64_t fatal_at = -1;          ///< Fatal SourceError at this call.
  std::int64_t stall_at = -1;          ///< Hard stall (sleep stall_ms) at this call.
  std::int64_t premature_eos_at = -1;  ///< End of stream at this call.
  int stall_ms = 0;

  /// Whether restart() revives the source after a fatal error. A revived
  /// source resumes at its pre-fault position (no frame loss).
  bool restartable = true;

  /// Optional completion latch for the stall: set to true once the stall
  /// ends — either the full sleep elapsed or a watchdog cancel unwound it
  /// early (the stall polls the thread's CancelToken and throws
  /// CancelledError when cancelled). Tests that injected a stall wait on
  /// this instead of guessing at sleep durations.
  std::shared_ptr<std::atomic<bool>> stall_done;
};

/// Counts of the faults actually injected (for assertions and bench rows).
struct FaultLog {
  std::uint64_t transient_errors = 0;
  std::uint64_t fatal_errors = 0;
  std::uint64_t stalls = 0;
  std::uint64_t latency_spikes = 0;
  std::uint64_t corrupted_frames = 0;
  std::uint64_t truncated_frames = 0;
  std::uint64_t premature_eos = 0;
};

class FaultInjectingSource final : public FrameSource {
 public:
  FaultInjectingSource(std::unique_ptr<FrameSource> inner, FaultPlan plan,
                       std::uint64_t seed);

  std::optional<Frame> next() override;
  std::int64_t total_frames() const override { return inner_->total_frames(); }
  bool restart() override;

  const FaultLog& log() const { return log_; }

 private:
  std::unique_ptr<FrameSource> inner_;
  FaultPlan plan_;
  runtime::Xoshiro256 rng_;
  FaultLog log_;
  std::int64_t calls_ = 0;       ///< next() invocations (fault-index timebase).
  bool fatal_latched_ = false;   ///< Fatal fired; next() keeps throwing until restart().
  bool eos_latched_ = false;     ///< Premature EOS fired; stream stays ended.
};

}  // namespace ffsva::video
