// End-to-end training: SGD on the SNM-shaped network must actually learn.
#include <gtest/gtest.h>

#include "nn/layers.hpp"
#include "nn/loss.hpp"
#include "nn/optim.hpp"

namespace ffsva::nn {
namespace {

TEST(Sgd, SingleParameterConvergesToMinimum) {
  // Minimize (w - 3)^2 via the Param interface.
  Tensor w(1, 1, 1, 1), g(1, 1, 1, 1);
  w[0] = 0.0f;
  Sgd opt({{&w, &g}}, {0.1, 0.0, 0.0});
  for (int step = 0; step < 200; ++step) {
    g[0] = 2.0f * (w[0] - 3.0f);
    opt.step();
  }
  EXPECT_NEAR(w[0], 3.0f, 1e-3);
}

TEST(Sgd, MomentumAcceleratesOnQuadratic) {
  auto run = [](double momentum) {
    Tensor w(1, 1, 1, 1), g(1, 1, 1, 1);
    w[0] = 10.0f;
    Sgd opt({{&w, &g}}, {0.02, momentum, 0.0});
    int steps = 0;
    while (std::abs(w[0]) > 0.05f && steps < 2000) {
      g[0] = 2.0f * w[0];
      opt.step();
      ++steps;
    }
    return steps;
  };
  EXPECT_LT(run(0.9), run(0.0));
}

TEST(Sgd, WeightDecayShrinksUnusedWeights) {
  Tensor w(1, 1, 1, 1), g(1, 1, 1, 1);
  w[0] = 1.0f;
  Sgd opt({{&w, &g}}, {0.1, 0.0, 0.5});
  for (int i = 0; i < 50; ++i) {
    g[0] = 0.0f;  // no data gradient
    opt.step();
  }
  EXPECT_LT(std::abs(w[0]), 0.1f);
}

TEST(Sgd, StepZeroesGradients) {
  Tensor w(1, 1, 1, 1), g(1, 1, 1, 1);
  g[0] = 5.0f;
  Sgd opt({{&w, &g}}, {0.1, 0.9, 0.0});
  opt.step();
  EXPECT_EQ(g[0], 0.0f);
}

TEST(Training, LearnsLinearlySeparableBlobs) {
  // Two Gaussian blobs in 8-D, tiny linear model: accuracy should reach
  // ~100% within a few epochs.
  runtime::Xoshiro256 rng(42);
  const int n_train = 256;
  std::vector<Tensor> samples;
  std::vector<float> labels;
  for (int i = 0; i < n_train; ++i) {
    const bool pos = rng.chance(0.5);
    Tensor x(1, 8, 1, 1);
    for (int d = 0; d < 8; ++d) {
      x.at(0, d, 0, 0) = static_cast<float>(rng.normal() + (pos ? 1.0 : -1.0));
    }
    samples.push_back(x);
    labels.push_back(pos ? 1.0f : 0.0f);
  }

  Sequential net;
  net.add(std::make_unique<Linear>(8, 1, rng));
  Sgd opt(net.params(), {0.1, 0.9, 1e-4});

  for (int epoch = 0; epoch < 10; ++epoch) {
    for (int i = 0; i < n_train; i += 16) {
      Tensor batch(16, 8, 1, 1);
      std::vector<float> batch_labels;
      for (int k = 0; k < 16; ++k) {
        const auto idx = static_cast<std::size_t>((i + k) % n_train);
        for (int d = 0; d < 8; ++d) {
          batch.at(k, d, 0, 0) = samples[idx].at(0, d, 0, 0);
        }
        batch_labels.push_back(labels[idx]);
      }
      Tensor grad;
      bce_with_logits(net.forward(batch, true), batch_labels, grad);
      net.backward(grad);
      opt.step();
    }
  }

  int correct = 0;
  for (int i = 0; i < n_train; ++i) {
    const Tensor y = net.forward(samples[static_cast<std::size_t>(i)]);
    const bool pred = y.at(0, 0, 0, 0) > 0.0f;
    if (pred == (labels[static_cast<std::size_t>(i)] > 0.5f)) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / n_train, 0.95);
}

TEST(Training, SnmShapedCnnLearnsBlobPresence) {
  // 12x12 images: positives contain a bright 4x4 blob at a random position,
  // negatives are noise. The 3-layer CNN must exceed 90% train accuracy.
  runtime::Xoshiro256 rng(7);
  const int n = 160;
  std::vector<Tensor> xs;
  std::vector<float> ys;
  for (int i = 0; i < n; ++i) {
    Tensor x(1, 1, 12, 12);
    for (std::size_t j = 0; j < x.size(); ++j) {
      x[j] = static_cast<float>(rng.uniform(0.0, 0.2));
    }
    const bool pos = i % 2 == 0;
    if (pos) {
      const int bx = static_cast<int>(rng.below(8));
      const int by = static_cast<int>(rng.below(8));
      for (int dy = 0; dy < 4; ++dy) {
        for (int dx = 0; dx < 4; ++dx) {
          x.at(0, 0, by + dy, bx + dx) = 0.9f;
        }
      }
    }
    xs.push_back(x);
    ys.push_back(pos ? 1.0f : 0.0f);
  }

  Sequential net;
  net.add(std::make_unique<Conv2d>(1, 4, 3, 2, 1, rng))
      .add(std::make_unique<ReLU>())
      .add(std::make_unique<Conv2d>(4, 8, 3, 2, 1, rng))
      .add(std::make_unique<ReLU>())
      .add(std::make_unique<Linear>(8 * 3 * 3, 1, rng));
  Sgd opt(net.params(), {0.05, 0.9, 1e-4});

  for (int epoch = 0; epoch < 15; ++epoch) {
    for (int i = 0; i < n; i += 8) {
      Tensor batch(8, 1, 12, 12);
      std::vector<float> bl;
      for (int k = 0; k < 8; ++k) {
        const auto idx = static_cast<std::size_t>((i + k) % n);
        for (int py = 0; py < 12; ++py) {
          for (int px = 0; px < 12; ++px) {
            batch.at(k, 0, py, px) = xs[idx].at(0, 0, py, px);
          }
        }
        bl.push_back(ys[idx]);
      }
      Tensor grad;
      bce_with_logits(net.forward(batch, true), bl, grad);
      net.backward(grad);
      opt.step();
    }
  }

  int correct = 0;
  for (int i = 0; i < n; ++i) {
    const bool pred = net.forward(xs[static_cast<std::size_t>(i)]).at(0, 0, 0, 0) > 0.0f;
    if (pred == (ys[static_cast<std::size_t>(i)] > 0.5f)) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / n, 0.9);
}

}  // namespace
}  // namespace ffsva::nn
