#include "nn/loss.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ffsva::nn {
namespace {

TEST(Sigmoid, Symmetry) {
  EXPECT_DOUBLE_EQ(sigmoid(0.0), 0.5);
  EXPECT_NEAR(sigmoid(2.0) + sigmoid(-2.0), 1.0, 1e-12);
}

TEST(BceWithLogits, PerfectPredictionsNearZeroLoss) {
  Tensor logits(2, 1, 1, 1);
  logits.at(0, 0, 0, 0) = 20.0f;   // strongly positive
  logits.at(1, 0, 0, 0) = -20.0f;  // strongly negative
  Tensor grad;
  const double loss = bce_with_logits(logits, {1.0f, 0.0f}, grad);
  EXPECT_LT(loss, 1e-6);
  EXPECT_NEAR(grad.at(0, 0, 0, 0), 0.0, 1e-6);
}

TEST(BceWithLogits, ChanceLevelIsLog2) {
  Tensor logits(2, 1, 1, 1);  // zeros -> p = 0.5
  Tensor grad;
  const double loss = bce_with_logits(logits, {1.0f, 0.0f}, grad);
  EXPECT_NEAR(loss, std::log(2.0), 1e-9);
}

TEST(BceWithLogits, GradientIsSigmoidMinusTargetOverN) {
  Tensor logits(2, 1, 1, 1);
  logits.at(0, 0, 0, 0) = 1.5f;
  logits.at(1, 0, 0, 0) = -0.5f;
  Tensor grad;
  bce_with_logits(logits, {1.0f, 0.0f}, grad);
  EXPECT_NEAR(grad.at(0, 0, 0, 0), (sigmoid(1.5) - 1.0) / 2, 1e-7);
  EXPECT_NEAR(grad.at(1, 0, 0, 0), (sigmoid(-0.5) - 0.0) / 2, 1e-7);
}

TEST(BceWithLogits, NumericallyStableAtExtremes) {
  Tensor logits(2, 1, 1, 1);
  logits.at(0, 0, 0, 0) = 500.0f;
  logits.at(1, 0, 0, 0) = -500.0f;
  Tensor grad;
  const double loss = bce_with_logits(logits, {0.0f, 1.0f}, grad);
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_NEAR(loss, 500.0, 1.0);  // worst-case mislabels cost |z|
}

TEST(BceWithLogits, ShapeMismatchThrows) {
  Tensor logits(2, 1, 1, 1);
  Tensor grad;
  EXPECT_THROW(bce_with_logits(logits, {1.0f}, grad), std::invalid_argument);
  Tensor multi(2, 3, 1, 1);
  EXPECT_THROW(bce_with_logits(multi, {1.0f, 0.0f}, grad), std::invalid_argument);
}

TEST(SoftmaxCrossEntropy, UniformLogitsGiveLogC) {
  Tensor logits(1, 4, 1, 1);
  Tensor grad;
  const double loss = softmax_cross_entropy(logits, {2}, grad);
  EXPECT_NEAR(loss, std::log(4.0), 1e-9);
  // Gradient: p - onehot, p = 1/4.
  EXPECT_NEAR(grad.at(0, 0, 0, 0), 0.25, 1e-9);
  EXPECT_NEAR(grad.at(0, 2, 0, 0), 0.25 - 1.0, 1e-9);
}

TEST(SoftmaxCrossEntropy, ConfidentCorrectIsLowLoss) {
  Tensor logits(1, 3, 1, 1);
  logits.at(0, 1, 0, 0) = 30.0f;
  Tensor grad;
  EXPECT_LT(softmax_cross_entropy(logits, {1}, grad), 1e-6);
}

TEST(SoftmaxCrossEntropy, GradientsSumToZeroPerSample) {
  Tensor logits(2, 5, 1, 1);
  for (std::size_t i = 0; i < logits.size(); ++i) {
    logits[i] = static_cast<float>(i) * 0.3f - 1.0f;
  }
  Tensor grad;
  softmax_cross_entropy(logits, {0, 4}, grad);
  for (int n = 0; n < 2; ++n) {
    double sum = 0.0;
    for (int c = 0; c < 5; ++c) sum += grad.at(n, c, 0, 0);
    EXPECT_NEAR(sum, 0.0, 1e-6);
  }
}

TEST(SoftmaxCrossEntropy, BadLabelThrows) {
  Tensor logits(1, 3, 1, 1);
  Tensor grad;
  EXPECT_THROW(softmax_cross_entropy(logits, {3}, grad), std::invalid_argument);
  EXPECT_THROW(softmax_cross_entropy(logits, {0, 1}, grad), std::invalid_argument);
}

}  // namespace
}  // namespace ffsva::nn
