// relaxed-ok: the batch-cancelled flag only latches "some lane saw a
// cancel"; the lanes synchronize via the parallel_for join, after which the
// single reader rethrows.
#include "detect/reference.hpp"

#include <atomic>
#include <cassert>

#include "detect/fault_hook.hpp"
#include "runtime/cancel.hpp"
#include "runtime/parallel_for.hpp"

namespace ffsva::detect {

DetectionResult ReferenceDetector::detect(const image::Image& frame) const {
  FaultHook::on_call(FaultStage::kRef);
  runtime::check_cancel();
  DetectionResult out;
  const auto comps = foreground_components(frame, background_, config_.segmentation);
  out.detections.reserve(comps.size());
  for (const auto& c : comps) {
    out.detections.push_back(classify_component(
        c, frame.width(), frame.height(), config_.segmentation.min_pixels,
        config_.classifier));
  }
  return out;
}

std::vector<RefBatchItem> ReferenceDetector::detect_batch(
    std::span<const image::Image* const> frames) const {
  std::vector<const ReferenceDetector*> detectors(frames.size(), this);
  return ffsva::detect::detect_batch(detectors, frames);
}

std::vector<RefBatchItem> detect_batch(
    std::span<const ReferenceDetector* const> detectors,
    std::span<const image::Image* const> frames) {
  assert(detectors.size() == frames.size());
  std::vector<RefBatchItem> out(frames.size());
  // Grain 1: one frame's full-resolution segmentation dwarfs the fork-join
  // overhead, and batch sizes are small (ref_batch_size). Each index writes
  // only its own slot, so the chunks share no mutable state. Exceptions are
  // captured per frame — parallel_for would otherwise rethrow the first one
  // and abandon the remaining chunks, dropping innocent batch-mates.
  // Cancellation is the exception to that rule: a watchdog cancel targets
  // the whole call, so it is recorded per frame but rethrown once after the
  // join (every lane observes the same token, so batch-mates unwind too) —
  // swallowing it here would hide the wedge from the escalation machinery.
  std::atomic<bool> cancelled{false};
  runtime::parallel_for(0, static_cast<std::int64_t>(frames.size()), 1,
                        [&](std::int64_t b, std::int64_t e) {
                          for (std::int64_t i = b; i < e; ++i) {
                            const auto idx = static_cast<std::size_t>(i);
                            try {
                              out[idx].result = detectors[idx]->detect(*frames[idx]);
                            } catch (const runtime::CancelledError&) {
                              out[idx].ok = false;
                              cancelled.store(true, std::memory_order_relaxed);
                            } catch (...) {
                              out[idx].ok = false;
                            }
                          }
                        });
  if (cancelled.load(std::memory_order_relaxed)) {
    throw runtime::CancelledError("reference batch cancelled");
  }
  return out;
}

}  // namespace ffsva::detect
