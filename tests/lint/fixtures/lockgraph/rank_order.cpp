// Fixture: an acquisition edge that runs *against* the lock_rank.hpp
// order — a leaf-rank lock held while taking a control-plane lock. The
// runtime verifier would abort here; the rank-order check finds it first.
#include "runtime/annotations.hpp"

using ffsva::runtime::Mutex;
using ffsva::runtime::MutexLock;

namespace rankfix {

struct Inverted {
  Mutex leaf_{ffsva::runtime::rank::kQueueWaiter, "fixture::leaf"};
  Mutex control_{ffsva::runtime::rank::kNodeControl, "fixture::control"};

  void backwards() {
    MutexLock inner(leaf_);
    MutexLock outer(control_);  // rank 100 under rank 800: flagged
  }
};

}  // namespace rankfix
