// Multi-instance stream placement and re-forwarding (paper Section 4.3.1):
//
//   "when the execution speed of T-YOLO is lower than a certain level for
//    a period of time, it means this FFS-VA instance has spare ability to
//    serve extra streams. Consequently, a new stream can be considered to
//    add into the instance. In contrast, when any queue of T-YOLO or SNM
//    is longer than its predefined threshold, it means that the FFS-VA
//    instance overloads. The corresponding video stream is re-forwarded to
//    another FFS-VA instance with spare capacity immediately."
//
// ClusterManager is the pure placement policy: each instance reports its
// T-YOLO service rate and queue-overflow events; the manager admits new
// streams to instances with spare capacity and moves streams away from
// overloaded ones. It holds no threads and no sockets — embedding it in a
// real control plane (or the simulator) is the caller's job.
//
// Thread safety: a real control plane reports snapshots from sampler
// threads while placement questions arrive from an admission path, so every
// public method is serialized on one internal mutex (annotated for the
// thread-safety analysis; decision helpers are _locked private methods).
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "core/config.hpp"
#include "core/policies.hpp"
#include "runtime/annotations.hpp"

namespace ffsva::core {

struct InstanceSnapshot;  // pipeline.hpp

struct ReforwardDecision {
  int stream_id = -1;
  int from_instance = -1;
  int to_instance = -1;
};

class ClusterManager {
 public:
  ClusterManager(int num_instances, const FfsVaConfig& config);

  int num_instances() const { return num_instances_; }

  /// Telemetry from instance `id` at time `now_sec`.
  void report_tyolo_service(int id, double now_sec, int frames)
      FFSVA_EXCLUDES(mu_);
  void report_queue_over_threshold(int id, double now_sec) FFSVA_EXCLUDES(mu_);

  /// Fold one live engine snapshot (FfsVaInstance::snapshot()) into the
  /// placement signals — the preferred reporting path for real instances:
  ///  * the T-YOLO served delta since the previous snapshot feeds the
  ///    admission window (a counter that went backwards re-baselines, so an
  ///    instance restart does not poison the rate);
  ///  * any stream's SNM or T-YOLO queue at/over its threshold raises the
  ///    overload signal (Section 4.3.1's re-forward trigger);
  ///  * instance health follows the snapshot: an instance with quarantined
  ///    streams stops receiving placements and becomes a re-forward source.
  void report_snapshot(int id, double now_sec, const InstanceSnapshot& snap)
      FFSVA_EXCLUDES(mu_);

  /// Health gate. Unhealthy instances never receive place_new_stream /
  /// re-forward placements and are drained by next_reforward even when
  /// their queues look fine. Set by report_snapshot; settable directly by
  /// control planes with out-of-band health signals.
  bool instance_healthy(int id) const FFSVA_EXCLUDES(mu_);
  void set_instance_health(int id, bool healthy) FFSVA_EXCLUDES(mu_);

  /// Register / remove stream membership.
  void attach_stream(int stream_id, int instance_id) FFSVA_EXCLUDES(mu_);
  void detach_stream(int stream_id) FFSVA_EXCLUDES(mu_);
  int instance_of(int stream_id) const FFSVA_EXCLUDES(mu_);
  int stream_count(int instance_id) const FFSVA_EXCLUDES(mu_);

  /// Where should a NEW stream go? Prefers an instance with demonstrated
  /// spare capacity; among candidates picks the one with the fewest
  /// streams. Returns nullopt if no instance currently shows spare
  /// capacity (caller should provision another server).
  std::optional<int> place_new_stream(double now_sec) FFSVA_EXCLUDES(mu_);

  /// If some instance is overloaded and another has spare capacity, pick
  /// one stream to move "immediately". Returns nullopt when no move is
  /// warranted. The returned stream is re-attached to the target.
  std::optional<ReforwardDecision> next_reforward(double now_sec)
      FFSVA_EXCLUDES(mu_);

  bool instance_overloaded(int id, double now_sec) const FFSVA_EXCLUDES(mu_);
  bool instance_has_spare(int id, double now_sec) FFSVA_EXCLUDES(mu_);

 private:
  struct Instance {
    AdmissionController admission;
    std::vector<int> streams;
    bool healthy = true;
    /// Snapshot-delta baseline for report_snapshot's served counter.
    std::uint64_t last_tyolo_served = 0;
    bool have_baseline = false;
    explicit Instance(const FfsVaConfig& cfg)
        : admission(cfg.admit_tyolo_fps, cfg.admit_window_sec) {}
  };

  void attach_stream_locked(int stream_id, int instance_id)
      FFSVA_REQUIRES(mu_);
  void detach_stream_locked(int stream_id) FFSVA_REQUIRES(mu_);
  int stream_count_locked(int instance_id) const FFSVA_REQUIRES(mu_);
  bool overloaded_locked(int id, double now_sec) const FFSVA_REQUIRES(mu_);
  bool has_spare_locked(int id, double now_sec) FFSVA_REQUIRES(mu_);

  const int num_instances_;
  mutable runtime::Mutex mu_{runtime::rank::kClusterManager,
                             "core::ClusterManager::mu_"};
  std::vector<Instance> instances_ FFSVA_GUARDED_BY(mu_);
  std::map<int, int> stream_home_ FFSVA_GUARDED_BY(mu_);
  const FfsVaConfig config_;
};

}  // namespace ffsva::core
