#include "image/components.hpp"

#include <gtest/gtest.h>

namespace ffsva::image {
namespace {

Image binary_from(const char* const* rows, int w, int h) {
  Image img(w, h, 1, 0);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      if (rows[y][x] == '#') img.at(x, y) = 255;
    }
  }
  return img;
}

TEST(ConnectedComponents, EmptyImageHasNone) {
  const Image img(8, 8, 1, 0);
  EXPECT_TRUE(connected_components(img).empty());
}

TEST(ConnectedComponents, SingleBlobBoxAndCount) {
  const char* rows[] = {
      "........",
      ".###....",
      ".###....",
      "........",
  };
  const Image img = binary_from(rows, 8, 4);
  const auto comps = connected_components(img);
  ASSERT_EQ(comps.size(), 1u);
  EXPECT_EQ(comps[0].pixel_count, 6);
  EXPECT_EQ(comps[0].box, (Box{1, 1, 4, 3}));
}

TEST(ConnectedComponents, TwoSeparateBlobs) {
  const char* rows[] = {
      "##....##",
      "##....##",
  };
  const auto comps = connected_components(binary_from(rows, 8, 2));
  ASSERT_EQ(comps.size(), 2u);
  EXPECT_EQ(comps[0].pixel_count, 4);
  EXPECT_EQ(comps[1].pixel_count, 4);
}

TEST(ConnectedComponents, DiagonalIsNotConnected) {
  // 4-connectivity: diagonal neighbors are separate components.
  const char* rows[] = {
      "#.",
      ".#",
  };
  EXPECT_EQ(connected_components(binary_from(rows, 2, 2)).size(), 2u);
}

TEST(ConnectedComponents, LShapeIsOneComponent) {
  const char* rows[] = {
      "#..",
      "#..",
      "###",
  };
  const auto comps = connected_components(binary_from(rows, 3, 3));
  ASSERT_EQ(comps.size(), 1u);
  EXPECT_EQ(comps[0].pixel_count, 5);
  EXPECT_EQ(comps[0].box, (Box{0, 0, 3, 3}));
}

TEST(ConnectedComponents, MinPixelsFiltersSmallBlobs) {
  const char* rows[] = {
      "#...####",
      "....####",
  };
  const auto comps = connected_components(binary_from(rows, 8, 2), /*min_pixels=*/4);
  ASSERT_EQ(comps.size(), 1u);
  EXPECT_EQ(comps[0].pixel_count, 8);
}

TEST(ConnectedComponents, SortedByDescendingSize) {
  const char* rows[] = {
      "#..####..##",
  };
  const auto comps = connected_components(binary_from(rows, 11, 1));
  ASSERT_EQ(comps.size(), 3u);
  EXPECT_GE(comps[0].pixel_count, comps[1].pixel_count);
  EXPECT_GE(comps[1].pixel_count, comps[2].pixel_count);
}

TEST(ConnectedComponents, LabelsCoverExactlyForeground) {
  const char* rows[] = {
      "##..",
      "..##",
  };
  const Image img = binary_from(rows, 4, 2);
  std::vector<int> labels;
  const auto comps = connected_components_labeled(img, labels, 1);
  ASSERT_EQ(comps.size(), 2u);
  int labeled = 0;
  for (int y = 0; y < 2; ++y) {
    for (int x = 0; x < 4; ++x) {
      const int l = labels[static_cast<std::size_t>(y) * 4 + x];
      if (img.at(x, y) != 0) {
        EXPECT_GT(l, 0);
        ++labeled;
      } else {
        EXPECT_EQ(l, 0);
      }
    }
  }
  EXPECT_EQ(labeled, 4);
}

TEST(ConnectedComponents, FullForegroundIsOneComponent) {
  const Image img(16, 16, 1, 255);
  const auto comps = connected_components(img);
  ASSERT_EQ(comps.size(), 1u);
  EXPECT_EQ(comps[0].pixel_count, 256);
  EXPECT_EQ(comps[0].box, (Box{0, 0, 16, 16}));
}

TEST(ConnectedComponents, SnakePatternStaysConnected) {
  // A long winding 1-px path exercises the BFS frontier.
  Image img(21, 5, 1, 0);
  for (int x = 0; x < 21; ++x) img.at(x, 0) = 255;
  img.at(20, 1) = 255;
  for (int x = 0; x < 21; ++x) img.at(x, 2) = 255;
  img.at(0, 3) = 255;
  for (int x = 0; x < 21; ++x) img.at(x, 4) = 255;
  const auto comps = connected_components(img);
  ASSERT_EQ(comps.size(), 1u);
  EXPECT_EQ(comps[0].pixel_count, 65);
}

}  // namespace
}  // namespace ffsva::image
