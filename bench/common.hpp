// Shared harness code for the per-figure benchmark binaries.
//
// Every bench regenerates one table or figure of the paper's evaluation
// (Section 5), printing the measured series next to the values the paper
// reports. Accuracy figures run the *real* filters over synthetic
// workloads; throughput/latency figures run the discrete-event simulator
// with trace-calibrated outcome models (see DESIGN.md for the substitution
// argument).
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/trace.hpp"
#include "detect/specialize.hpp"
#include "sim/ffsva_sim.hpp"
#include "video/profiles.hpp"

namespace ffsva::bench {

/// A specialized stream plus a recorded evaluation trace.
struct CalibratedStream {
  video::SceneConfig cfg;
  std::shared_ptr<video::SceneSimulator> sim;
  detect::StreamModels models;
  std::vector<core::FrameRecord> trace;  ///< Over [calib_frames, total).
  std::int64_t eval_begin = 0;
};

/// Render `calib + eval` frames of the profile at the given TOR, specialize
/// the per-stream models on the calibration window (Section 4.1), and
/// record the real-filter trace over the evaluation window.
CalibratedStream build_stream(video::SceneConfig base, double tor, std::uint64_t seed,
                              std::int64_t calib_frames, std::int64_t eval_frames,
                              int snm_epochs = 8);

/// A small frame for printing aligned tables.
void print_header(const std::string& title);
void print_rule();

/// Markov outcome factory for the simulator, calibrated from a trace.
sim::SimSetup sim_setup_from(const sim::MarkovParams& params,
                             const core::FfsVaConfig& config, int streams,
                             bool online, std::int64_t frames_per_stream,
                             double duration_sec = 120.0);

/// Machine-readable bench output, opted into with `--json <path>` on the
/// bench command line. Rows added via add() are written as a JSON array of
/// {name, fps, p50_ms, p99_ms, threads} objects when the report is
/// destroyed (threads = runtime::compute_parallelism() at write time), so
/// runs can be archived (BENCH_*.json) and diffed across commits. Without
/// --json the report is inert and benches print their tables as before.
class JsonReport {
 public:
  /// Extra per-row keys (e.g. drop_rate, fault counters), written verbatim
  /// as additional JSON number fields — unlike fps/percentiles, a zero here
  /// is meaningful (a 0.0 drop rate) and is written as 0, not null.
  using Extras = std::vector<std::pair<std::string, double>>;

  JsonReport(int argc, char** argv);
  ~JsonReport();

  /// True when --json was given (rows are being collected).
  bool active() const { return !path_.empty(); }

  /// Record one measured series. fps <= 0 or negative percentiles are
  /// written as JSON null.
  void add(const std::string& name, double fps, double p50_ms, double p99_ms,
           Extras extras = {});

 private:
  std::string path_;
  struct Row {
    std::string name;
    double fps;
    double p50_ms;
    double p99_ms;
    Extras extras;
  };
  std::vector<Row> rows_;
};

}  // namespace ffsva::bench
