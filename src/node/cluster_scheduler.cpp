#include "node/cluster_scheduler.hpp"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "core/pipeline.hpp"
#include "runtime/supervision.hpp"

namespace ffsva::node {

namespace {

/// Ack deadline: materializing a spec on the node (calibration render +
/// specialization) happens before the ack comes back.
constexpr int kAssignAckTimeoutMs = 120'000;
constexpr int kStopAckTimeoutMs = 15'000;

}  // namespace

double ClusterReport::handoff_p99_ms() const {
  if (handoff_ms.empty()) return 0.0;
  std::vector<double> v = handoff_ms;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(
      static_cast<double>(v.size() - 1) * 0.99);
  return v[idx];
}

const StreamOutcome* ClusterReport::outcome(std::uint32_t stream_id) const {
  for (const auto& s : streams) {
    if (s.stream_id == stream_id) return &s;
  }
  return nullptr;
}

ClusterScheduler::ClusterScheduler(std::vector<net::Endpoint> nodes,
                                   const core::FfsVaConfig& config,
                                   SchedOptions opts)
    : endpoints_(std::move(nodes)), config_(config), opts_(opts),
      manager_(static_cast<int>(endpoints_.size()), config) {
  clients_.reserve(endpoints_.size());
  for (std::size_t i = 0; i < endpoints_.size(); ++i) {
    // The scheduler identifies itself with a node_id outside the node
    // range; nodes don't currently act on it (diagnostic only).
    clients_.emplace_back(endpoints_[i], 0xFFFFu, &counters_);
  }
}

bool ClusterScheduler::connect_all() {
  const std::int64_t deadline = runtime::steady_now_ms() + 10'000;
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    while (clients_[i].get(500) == nullptr) {
      if (runtime::steady_now_ms() > deadline) {
        std::fprintf(stderr, "sched: node %zu unreachable\n", i);
        return false;
      }
    }
  }
  return true;
}

bool ClusterScheduler::assign(int node, const StreamSpec& spec, bool resume) {
  net::Channel* ch = clients_[static_cast<std::size_t>(node)].get(2000);
  if (ch == nullptr) return false;
  AssignStream msg;
  msg.spec = spec;
  msg.resume = resume;
  if (!ch->send(net::MsgType::kAssignStream, msg.serialize())) return false;
  const std::int64_t deadline = runtime::steady_now_ms() + kAssignAckTimeoutMs;
  while (runtime::steady_now_ms() < deadline) {
    const auto frame = ch->recv(100);
    if (!frame) {
      if (!ch->connected()) return false;
      continue;
    }
    if (frame->type == net::MsgType::kAssignAck) {
      const auto ack = AssignAck::parse(frame->payload);
      if (ack && ack->stream_id == spec.stream_id) return ack->ok;
      continue;
    }
    dispatch(node, *frame);  // results/ended from other streams keep flowing
  }
  return false;
}

void ClusterScheduler::start_migration(std::uint32_t stream_id, int target) {
  auto it = streams_.find(stream_id);
  if (it == streams_.end()) return;
  StreamState& st = it->second;
  if (st.done || st.draining || st.node < 0 || st.node == target) return;
  net::Channel* ch = clients_[static_cast<std::size_t>(st.node)].get(2000);
  if (ch == nullptr) return;
  EndStream end;
  end.stream_id = stream_id;
  if (!ch->send(net::MsgType::kEndStream, end.serialize())) return;
  st.draining = true;
  st.pending_target = target;
  st.drain_t0_ms = runtime::steady_now_ms();
  if (opts_.verbose) {
    std::fprintf(stderr, "sched: migrating stream %u: node %d -> %d\n",
                 stream_id, st.node, target);
  }
}

void ClusterScheduler::dispatch(int node, const net::WireFrame& frame) {
  switch (frame.type) {
    case net::MsgType::kResults: {
      const auto res = StreamResults::parse(frame.payload);
      if (!res) return;
      auto it = streams_.find(res->stream_id);
      if (it == streams_.end()) return;
      // Merge by index: segments from different nodes are disjoint, and a
      // node retrying a lost report merely re-inserts the same indices.
      auto& emitted = it->second.outcome.emitted;
      emitted.insert(emitted.end(), res->emitted_frames.begin(),
                     res->emitted_frames.end());
      std::sort(emitted.begin(), emitted.end());
      emitted.erase(std::unique(emitted.begin(), emitted.end()),
                    emitted.end());
      return;
    }
    case net::MsgType::kStreamEnded: {
      const auto ended = StreamEnded::parse(frame.payload);
      if (ended) on_stream_ended(node, *ended);
      return;
    }
    // No default: -Wswitch must flag a new MsgType the scheduler ignores.
    // Heartbeat echoes and stray acks arriving outside their send/await
    // windows are dropped by design.
    case net::MsgType::kHello:
    case net::MsgType::kHelloAck:
    case net::MsgType::kHelloReject:
    case net::MsgType::kHeartbeat:
    case net::MsgType::kSnapshot:
    case net::MsgType::kAssignStream:
    case net::MsgType::kAssignAck:
    case net::MsgType::kEndStream:
    case net::MsgType::kDrain:
    case net::MsgType::kStop:
    case net::MsgType::kStopAck:
      return;
  }
  // Unknown-but-well-framed u16 values fall out of the switch and are
  // ignored (forward compat with newer peers).
}

void ClusterScheduler::on_stream_ended(int node, const StreamEnded& ended) {
  auto it = streams_.find(ended.stream_id);
  if (it == streams_.end()) return;
  StreamState& st = it->second;
  if (st.done || st.node != node) return;
  st.outcome.ingested += ended.ingested;

  if (st.draining && st.pending_target >= 0 && ended.cursor < st.spec.end) {
    // Second half of the hand-off: queue the remainder for reassignment
    // from the top-level loop (never nested inside a channel drain).
    st.spec.begin = ended.cursor;
    st.node = -1;
    resume_queue_.push_back(ended.stream_id);
    return;
  }
  // Natural completion (or a drain that raced the stream's own end).
  st.done = true;
  st.node = -1;
  st.draining = false;
  st.pending_target = -1;
  manager_.detach_stream(static_cast<int>(ended.stream_id));
}

void ClusterScheduler::flush_resumes() {
  while (!resume_queue_.empty()) {
    const std::uint32_t id = resume_queue_.front();
    resume_queue_.erase(resume_queue_.begin());
    StreamState& st = streams_[id];
    const int target = st.pending_target;
    st.draining = false;
    st.pending_target = -1;
    if (assign(target, st.spec, /*resume=*/true)) {
      manager_.attach_stream(static_cast<int>(id), target);
      st.node = target;
      const double ms =
          static_cast<double>(runtime::steady_now_ms() - st.drain_t0_ms);
      report_.handoff_ms.push_back(ms);
      report_.handoffs += 1;
      st.outcome.handoffs += 1;
      continue;
    }
    std::fprintf(stderr, "sched: resume of stream %u on node %d failed\n", id,
                 target);
    report_.ok = false;
    st.done = true;  // don't spin on an unplaceable stream
    manager_.detach_stream(static_cast<int>(id));
  }
}

void ClusterScheduler::poll_snapshots(double now_sec) {
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    net::Channel* ch = clients_[i].channel();
    if (ch == nullptr) continue;
    if (!ch->send(net::MsgType::kSnapshot)) continue;
    const std::int64_t deadline = runtime::steady_now_ms() + 2000;
    while (runtime::steady_now_ms() < deadline) {
      const auto frame = ch->recv(100);
      if (!frame) {
        if (!ch->connected()) break;
        continue;
      }
      if (frame->type == net::MsgType::kSnapshot) {
        const auto snap = parse_snapshot(frame->payload);
        if (snap) {
          manager_.report_snapshot(static_cast<int>(i), now_sec, *snap);
          report_.snapshot_frames += 1;
        }
        break;
      }
      dispatch(static_cast<int>(i), *frame);
    }
  }
}

void ClusterScheduler::stop_all() {
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    net::Channel* ch = clients_[i].channel();
    if (ch == nullptr) continue;
    if (!ch->send(net::MsgType::kStop)) continue;
    const std::int64_t deadline = runtime::steady_now_ms() + kStopAckTimeoutMs;
    while (runtime::steady_now_ms() < deadline) {
      const auto frame = ch->recv(200);
      if (!frame) {
        if (!ch->connected()) break;
        continue;
      }
      if (frame->type == net::MsgType::kStopAck) break;
      dispatch(static_cast<int>(i), *frame);
    }
    clients_[i].reset();
  }
}

ClusterReport ClusterScheduler::run(const std::vector<StreamSpec>& specs) {
  t0_ms_ = runtime::steady_now_ms();
  report_ = ClusterReport{};
  report_.ok = true;
  const auto now_sec = [this] {
    return static_cast<double>(runtime::steady_now_ms() - t0_ms_) / 1000.0;
  };

  if (!connect_all()) {
    report_.ok = false;
    return report_;
  }

  // Initial placement: the manager's policy, with a cold-start round-robin
  // fallback (before any snapshot, every instance looks equally spare, so
  // the fallback rarely fires — it covers an all-overloaded report burst).
  int rr = 0;
  for (const StreamSpec& spec : specs) {
    StreamState st;
    st.spec = spec;
    st.outcome.stream_id = spec.stream_id;
    const auto placed = manager_.place_new_stream(now_sec());
    const int node = placed ? *placed
                            : (rr++ % static_cast<int>(clients_.size()));
    if (!assign(node, spec, /*resume=*/false)) {
      std::fprintf(stderr, "sched: assign of stream %u to node %d failed\n",
                   spec.stream_id, node);
      report_.ok = false;
      st.done = true;
    } else {
      st.node = node;
      manager_.attach_stream(static_cast<int>(spec.stream_id), node);
    }
    streams_[spec.stream_id] = std::move(st);
  }

  std::int64_t last_snap_ms = 0;
  for (;;) {
    bool all_done = true;
    for (const auto& [id, st] : streams_) all_done = all_done && st.done;
    if (all_done) break;
    if (opts_.deadline_sec > 0.0 && now_sec() > opts_.deadline_sec) {
      std::fprintf(stderr, "sched: deadline hit with streams outstanding\n");
      report_.ok = false;
      break;
    }

    // Inbound traffic: results / end-of-stream notices from every node.
    for (std::size_t i = 0; i < clients_.size(); ++i) {
      net::Channel* ch = clients_[i].get(100);
      if (ch == nullptr) continue;
      while (const auto frame = ch->recv(10)) {
        dispatch(static_cast<int>(i), *frame);
      }
    }
    flush_resumes();

    const std::int64_t now_ms = runtime::steady_now_ms();
    if (now_ms - last_snap_ms >= opts_.snapshot_interval_ms) {
      last_snap_ms = now_ms;
      poll_snapshots(now_sec());
    }

    if (opts_.force_migration_at_sec >= 0.0 && !forced_done_ &&
        now_sec() >= opts_.force_migration_at_sec) {
      for (const auto& [id, st] : streams_) {
        if (st.done || st.draining || st.node < 0) continue;
        forced_done_ = true;
        start_migration(id,
                        (st.node + 1) % static_cast<int>(clients_.size()));
        break;
      }
    }

    // Gate BEFORE asking: next_reforward re-attaches the stream inside the
    // manager, so a decision we wouldn't act on must not be requested.
    if (static_cast<double>(now_ms - last_reforward_ms_) >=
        opts_.reforward_min_gap_sec * 1000.0) {
      if (const auto rf = manager_.next_reforward(now_sec())) {
        last_reforward_ms_ = now_ms;
        // The manager has already re-attached the stream to the target;
        // the physical hand-off follows asynchronously.
        start_migration(static_cast<std::uint32_t>(rf->stream_id),
                        rf->to_instance);
      }
    }
  }

  stop_all();

  report_.wall_sec = now_sec();
  for (auto& [id, st] : streams_) {
    if (!st.done) report_.ok = false;
    report_.total_emitted += st.outcome.emitted.size();
    report_.streams.push_back(std::move(st.outcome));
  }
  std::sort(report_.streams.begin(), report_.streams.end(),
            [](const StreamOutcome& a, const StreamOutcome& b) {
              return a.stream_id < b.stream_id;
            });
  return report_;
}

std::vector<StreamOutcome> run_local(const std::vector<StreamSpec>& specs,
                                     const core::FfsVaConfig& config) {
  core::FfsVaConfig cfg = config;
  cfg.serve_until_stopped = false;
  cfg.max_streams = 0;
  core::FfsVaInstance inst(cfg);
  for (const StreamSpec& spec : specs) {
    MaterializedStream m = materialize(spec);
    inst.add_stream(std::move(m.source), std::move(m.models));
  }
  inst.run(/*online=*/false);
  std::map<std::uint32_t, StreamOutcome> by_id;
  for (const StreamSpec& spec : specs) {
    StreamOutcome o;
    o.stream_id = spec.stream_id;
    o.ingested = spec.end - spec.begin;  // offline pacing: lossless ingest
    by_id[spec.stream_id] = std::move(o);
  }
  for (const core::OutputEvent& ev : inst.outputs()) {
    by_id[static_cast<std::uint32_t>(ev.frame.stream_id)].emitted.push_back(
        static_cast<std::uint64_t>(ev.frame.index));
  }
  std::vector<StreamOutcome> out;
  out.reserve(by_id.size());
  for (auto& [id, o] : by_id) {
    std::sort(o.emitted.begin(), o.emitted.end());
    out.push_back(std::move(o));
  }
  return out;
}

std::vector<StreamSpec> make_specs(int count, std::uint64_t frames,
                                   std::uint32_t calib, int w, int h) {
  std::vector<StreamSpec> specs;
  specs.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    StreamSpec s;
    s.stream_id = static_cast<std::uint32_t>(i);
    // A 3:1 jackson/coral mix with spread TORs: the load the two Table-1
    // workloads would put on a node, without every stream being identical.
    if (i % 4 == 3) {
      s.profile = Profile::kCoral;
      s.tor = 0.5;
    } else {
      s.profile = Profile::kJackson;
      s.tor = 0.08 + 0.04 * static_cast<double>(i % 3);
    }
    s.seed = 1000u + static_cast<std::uint64_t>(i);
    s.calib_frames = calib;
    s.begin = calib;
    s.end = calib + frames;
    s.snm_epochs = 2;
    s.width = static_cast<std::uint16_t>(w);
    s.height = static_cast<std::uint16_t>(h);
    specs.push_back(s);
  }
  return specs;
}

}  // namespace ffsva::node
