// Rasterization primitives used by the synthetic scene simulator
// (ffsva::video) to render backgrounds and target objects.
#pragma once

#include <cstdint>

#include "image/geometry.hpp"
#include "image/image.hpp"

namespace ffsva::image {

struct Rgb {
  std::uint8_t r = 0, g = 0, b = 0;
};

/// Fill an axis-aligned rectangle (clipped to the image).
void fill_rect(Image& img, const Box& rect, Rgb color);

/// Fill a solid ellipse centered at (cx, cy) with radii (rx, ry), clipped.
void fill_ellipse(Image& img, int cx, int cy, int rx, int ry, Rgb color);

/// Vertical gradient from `top` to `bottom` over the whole image.
void fill_vertical_gradient(Image& img, Rgb top, Rgb bottom);

/// Multiply every channel by `gain` (lighting drift), clamped.
void apply_gain(Image& img, double gain);

/// Add a horizontal band of a solid color rows [y0, y1) — e.g. a road.
void fill_band(Image& img, int y0, int y1, Rgb color);

/// Blend a rectangle at `alpha` in [0,1] over the existing content.
void blend_rect(Image& img, const Box& rect, Rgb color, double alpha);

}  // namespace ffsva::image
