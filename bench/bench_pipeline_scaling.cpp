// Offline multi-stream scaling of the *threaded* pipeline engine.
//
// Unlike the figure benches (which drive the discrete-event simulator),
// this one runs the real FfsVaInstance — threads, bounded queues, the GPU0
// executor — over pre-rendered frames, so what is measured is the engine
// itself: thread-model overhead, queue wakeups, and cross-stream batching,
// not decode or simulation cost. Throughput is reported for 1/4/16/64
// identical streams replaying the same window.
//
// Online mode (30 FPS ingest pacing) is measured alongside: its headline
// number is the *drop rate* vs stream count — a paced camera cannot block,
// so overload shows up as frames dropped at ingest, not as lower FPS. A
// third series repeats the online run with injected source faults
// (transient decode errors, truncated frames, latency spikes) and reports
// the supervision counters, so the overhead and accounting of the fault
// path are archived next to the clean runs.
//
// A GPU1 series compares the reference-stage modes head-to-head on a
// reference-heavy deployment (16 streams of 256x192 frames at high target
// occupancy, so the expensive full-resolution segmentation dominates):
// ref_single (the pre-batching loop), ref_batch (micro-batched
// ReferenceDetector::detect_batch), and ref_crop_pack (cross-stream mosaic
// consolidation). Each batched row carries its per-frame pass/fail
// agreement with the ref_single oracle, so the throughput gain is archived
// next to the accuracy it costs.
//
// A final pair of 16-stream offline rows measures the telemetry subsystem
// itself: three interleaved off/on pairs (sampler at --metrics-interval-ms
// in the on runs), archived best-of-3 as offline_metrics_{off,on} with the
// relative overhead_pct — the budget DESIGN.md Section 10 commits to. When
// --trace-out is given, one extra unmeasured run records spans and writes
// the chrome://tracing timeline.
//
// A decode-policy series (--decode-policy) measures the codec-aware ingest
// path (DESIGN.md §13) head-to-head: 16 StoredSource streams decoding a
// static-heavy recording (192x144, low TOR, deadzoned delta-RLE), run
// interleaved best-of-3 under DecodePolicy::kFull vs kHinted. The hinted
// row archives the decode_skipped/hint_fallbacks counters, the stream's
// compression ratio, the offline pixel-SDD agreement of the hint chain
// (compressed_sdd_agreement), and the fps speedup over the kFull best.
//
// A model-fault series (--model-faults) measures the escalation layer
// (DESIGN.md Section 14) end-to-end: a 16-stream offline run with the
// per-call watchdog armed, clean vs with deterministic in-model wedges
// (FaultHook kStall) seeded at all four stages. The wedged row archives the
// supervision counters (cancels, stage restarts, poisoned frames, recovery
// p99) and its throughput ratio against the clean best — the "survives
// wedges at >=0.8x fault-free throughput" budget the layer commits to.
//
// Usage: bench_pipeline_scaling [--json out.json] [--label prefix]
//                               [--frames N] [--online-frames N]
//                               [--streams a,b,c]
//                               [--decode-policy full|hinted|both|off]
//                               [--model-faults on|off]
//                               [--metrics-out m.jsonl] [--trace-out t.json]
//                               [--metrics-interval-ms N]
// `--label` prefixes every series name, which is how pre/post engine runs
// are distinguished inside one archived BENCH_pipeline_scaling.json.
// --metrics-out captures the JSONL of the metrics-on overhead runs (without
// it they sample into a discarded buffer, so the overhead row is measured
// either way); --trace-out adds the unmeasured traced run.
#include "common.hpp"

#include <cstdlib>
#include <cstring>
#include <map>
#include <sstream>
#include <thread>

#include "core/pipeline.hpp"
#include "detect/fault_hook.hpp"
#include "detect/sdd.hpp"
#include "detect/snm.hpp"
#include "node/cluster_scheduler.hpp"
#include "node/node_server.hpp"
#include "runtime/stopwatch.hpp"
#include "video/fault_injection.hpp"
#include "video/source.hpp"

using namespace ffsva;

namespace {

/// Replays a pre-rendered frame window as one stream (zero decode cost).
class ReplaySource final : public video::FrameSource {
 public:
  ReplaySource(const std::vector<video::Frame>* window, int stream_id)
      : window_(window), stream_id_(stream_id) {}

  std::optional<video::Frame> next() override {
    if (next_ >= window_->size()) return std::nullopt;
    video::Frame f = (*window_)[next_++];
    f.stream_id = stream_id_;
    return f;
  }
  std::int64_t total_frames() const override {
    return static_cast<std::int64_t>(window_->size());
  }

 private:
  const std::vector<video::Frame>* window_;
  int stream_id_;
  std::size_t next_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  std::string label;
  std::int64_t frames_per_stream = 192;
  // Online rows are wall-clock bound by the 30 FPS pacing (wall ~ frames/30
  // whatever the stream count). The window must outrun the 128-frame ingest
  // buffer, or overload never surfaces as drops.
  std::int64_t online_frames = 192;
  std::vector<int> stream_counts = {1, 4, 16, 64};
  std::string metrics_out, trace_out;
  std::string decode_policy = "both";
  std::string model_faults = "on";
  int metrics_interval_ms = 100;
  bool cluster = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--cluster") == 0) cluster = true;
  }
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--label") == 0) label = std::string(argv[i + 1]) + "/";
    if (std::strcmp(argv[i], "--frames") == 0) frames_per_stream = std::atol(argv[i + 1]);
    if (std::strcmp(argv[i], "--online-frames") == 0) online_frames = std::atol(argv[i + 1]);
    if (std::strcmp(argv[i], "--decode-policy") == 0) decode_policy = argv[i + 1];
    if (std::strcmp(argv[i], "--model-faults") == 0) model_faults = argv[i + 1];
    if (std::strcmp(argv[i], "--metrics-out") == 0) metrics_out = argv[i + 1];
    if (std::strcmp(argv[i], "--trace-out") == 0) trace_out = argv[i + 1];
    if (std::strcmp(argv[i], "--metrics-interval-ms") == 0) {
      metrics_interval_ms = std::atoi(argv[i + 1]);
    }
    if (std::strcmp(argv[i], "--streams") == 0) {
      stream_counts.clear();
      for (const char* p = argv[i + 1]; *p;) {
        stream_counts.push_back(std::atoi(p));
        while (*p && *p != ',') ++p;
        if (*p == ',') ++p;
      }
    }
  }
  bench::JsonReport report(argc, argv);

  bench::print_header("PIPELINE SCALING -- offline engine throughput vs stream count");
  std::printf("hardware threads: %u\n", std::thread::hardware_concurrency());

  // One specialized stream, shared by every replica: the paper's deployment
  // has per-stream models, but for an engine benchmark identical models keep
  // specialization cost out of the loop. SDD/T-YOLO are const-safe; SNM and
  // the reference model are serialized by the engine's device ownership.
  std::printf("Specializing models and pre-rendering %lld frames...\n",
              static_cast<long long>(frames_per_stream));
  auto cfg_scene = video::jackson_profile();
  cfg_scene.width = 128;
  cfg_scene.height = 96;
  cfg_scene.tor = 0.25;
  const std::int64_t calib = 600;
  video::SceneSimulator sim(cfg_scene, 1234,
                            calib + frames_per_stream);
  std::vector<video::Frame> calib_frames;
  for (std::int64_t i = 0; i < calib; ++i) calib_frames.push_back(sim.render(i));
  detect::SpecializeConfig sc;
  sc.target = cfg_scene.target;
  sc.snm.epochs = 4;
  const auto models = detect::specialize_stream(calib_frames, sc, 1234);

  std::vector<video::Frame> window;
  window.reserve(static_cast<std::size_t>(frames_per_stream));
  for (std::int64_t i = 0; i < frames_per_stream; ++i) {
    window.push_back(sim.render(calib + i));
  }

  std::printf("\n%-10s %12s %12s %12s %12s\n", "streams", "total FPS", "FPS/stream",
              "p50 lat(ms)", "p99 lat(ms)");
  bench::print_rule();
  for (const int n : stream_counts) {
    core::FfsVaConfig cfg;
    core::FfsVaInstance instance(cfg);
    instance.set_output_sink([](const core::OutputEvent&) {});
    for (int s = 0; s < n; ++s) {
      instance.add_stream(std::make_unique<ReplaySource>(&window, s), models);
    }
    const auto stats = instance.run(/*online=*/false);
    const auto agg = stats.aggregate();
    std::printf("%-10d %12.1f %12.1f %12.1f %12.1f\n", n,
                stats.total_throughput_fps, stats.total_throughput_fps / n,
                agg.latency_ms.p50(), agg.latency_ms.p99());
    char name[64];
    std::snprintf(name, sizeof(name), "%soffline/streams=%d", label.c_str(), n);
    report.add(name, stats.total_throughput_fps, agg.latency_ms.p50(),
               agg.latency_ms.p99());
  }

  // --- codec-aware ingest: DecodePolicy kFull vs kHinted -------------------
  // The scaling window above replays pre-rendered frames (zero decode
  // cost), which is the right regime for measuring the engine — and the
  // wrong one for measuring ingest. This series stores a static-heavy
  // recording in the real delta-RLE codec and decodes it through
  // StoredSource, so prefetch pays the per-pixel reconstruction cost the
  // paper's offline mode is bounded by; kHinted then skips that cost for
  // every frame the compressed-domain SDD can prove droppable.
  if (decode_policy != "off") {
    const int n = 16;
    std::printf("\nSpecializing ingest-bound models (192x144, tor 0.15)...\n");
    auto dec_scene = video::jackson_profile();
    dec_scene.width = 192;
    dec_scene.height = 144;
    dec_scene.tor = 0.15;  // mostly background: decode dominates kFull
    const std::int64_t dec_calib = 600;
    video::SceneSimulator dec_sim(dec_scene, 7777, dec_calib + frames_per_stream);
    std::vector<video::Frame> dec_calib_frames;
    for (std::int64_t i = 0; i < dec_calib; ++i) {
      dec_calib_frames.push_back(dec_sim.render(i));
    }
    detect::SpecializeConfig dsc;
    dsc.target = dec_scene.target;
    dsc.snm.epochs = 4;
    const auto dec_models = detect::specialize_stream(dec_calib_frames, dsc, 7777);
    std::vector<video::Frame> dec_window;
    dec_window.reserve(static_cast<std::size_t>(frames_per_stream));
    for (std::int64_t i = 0; i < frames_per_stream; ++i) {
      dec_window.push_back(dec_sim.render(dec_calib + i));
    }
    const auto stored = std::make_shared<const video::StoredVideo>(
        video::StoredVideo::encode(dec_window, /*keyframe_interval=*/32,
                                   /*deadzone=*/4));

    struct PolicyRun {
      double fps = 0.0, p50 = 0.0, p99 = 0.0;
      std::uint64_t decode_full = 0, decode_skipped = 0;
      std::uint64_t hint_passes = 0, hint_fallbacks = 0;
      double compression_ratio = 0.0;
    };
    const auto run_policy = [&](core::DecodePolicy p) {
      core::FfsVaConfig cfg;
      cfg.decode_policy = p;
      core::FfsVaInstance instance(cfg);
      instance.set_output_sink([](const core::OutputEvent&) {});
      for (int s = 0; s < n; ++s) {
        instance.add_stream(std::make_unique<video::StoredSource>(stored, s),
                            dec_models);
      }
      const auto stats = instance.run(/*online=*/false);
      const auto agg = stats.aggregate();
      PolicyRun r;
      r.fps = stats.total_throughput_fps;
      r.p50 = agg.latency_ms.p50();
      r.p99 = agg.latency_ms.p99();
      r.decode_full = agg.ingest.decode_full;
      r.decode_skipped = agg.ingest.decode_skipped;
      r.hint_passes = agg.ingest.hint_passes;
      r.hint_fallbacks = agg.ingest.hint_fallbacks;
      r.compression_ratio = agg.ingest.compression_ratio;
      return r;
    };
    // The hint chain's pixel-SDD agreement is deterministic (a pure replay
    // of hints against decoded distances), so it is computed once offline
    // rather than per measured run. The default FfsVaConfig's conservative
    // band is what the engine runs with.
    const double hint_relax = core::FfsVaConfig{}.sdd_hint_relax;
    const auto agreement_report = detect::compressed_sdd_agreement(
        *stored, *dec_models.sdd, hint_relax);

    const struct {
      core::DecodePolicy policy;
      const char* name;
    } kPolicies[] = {{core::DecodePolicy::kFull, "decode_full"},
                     {core::DecodePolicy::kHinted, "decode_hinted"}};
    const bool run_pol[2] = {decode_policy != "hinted", decode_policy != "full"};
    // Same methodology as the other head-to-head blocks: one discarded
    // warmup, then interleaved reps, best-of per policy.
    const int reps = 3;
    std::printf("\ndecode policy (%d streams, offline, 192x144 stored, "
                "compression %.1fx, best of %d)\n", n,
                stored->stats().compression_ratio(), reps);
    std::printf("%-16s %12s %12s %12s\n", "policy", "total FPS", "p50 lat(ms)",
                "p99 lat(ms)");
    bench::print_rule();
    (void)run_policy(core::DecodePolicy::kFull);  // warmup, discarded
    PolicyRun best[2];
    for (int rep = 0; rep < reps; ++rep) {
      for (int m = 0; m < 2; ++m) {
        if (!run_pol[m]) continue;
        PolicyRun r = run_policy(kPolicies[m].policy);
        std::printf("%-16s %12.1f %12.1f %12.1f\n", kPolicies[m].name, r.fps,
                    r.p50, r.p99);
        if (r.fps > best[m].fps) best[m] = r;
      }
    }
    bench::print_rule();
    for (int m = 0; m < 2; ++m) {
      if (!run_pol[m]) continue;
      const PolicyRun& r = best[m];
      const bool hinted = kPolicies[m].policy == core::DecodePolicy::kHinted;
      bench::JsonReport::Extras extras{
          {"compression_ratio", r.compression_ratio}};
      std::printf("%-16s %12.1f %12.1f %12.1f", kPolicies[m].name, r.fps,
                  r.p50, r.p99);
      if (hinted) {
        extras.emplace_back("sdd_agreement", agreement_report.agreement());
        extras.emplace_back("decode_skipped",
                            static_cast<double>(r.decode_skipped));
        extras.emplace_back("hint_fallbacks",
                            static_cast<double>(r.hint_fallbacks));
        std::printf(" skipped=%llu fallbacks=%llu agreement=%.4f",
                    static_cast<unsigned long long>(r.decode_skipped),
                    static_cast<unsigned long long>(r.hint_fallbacks),
                    agreement_report.agreement());
        if (run_pol[0] && best[0].fps > 0.0) {
          const double speedup = r.fps / best[0].fps;
          extras.emplace_back("speedup_vs_full", speedup);
          std::printf(" speedup=%.2fx", speedup);
        }
      }
      std::printf("\n");
      char name[64];
      std::snprintf(name, sizeof(name), "%s%s/streams=%d", label.c_str(),
                    kPolicies[m].name, n);
      report.add(name, r.fps, r.p50, r.p99, std::move(extras));
    }
  }

  // --- GPU1 reference-stage modes: single vs batch vs crop_pack -----------
  // The scaling window above is cheap-filter bound (tiny frames, low target
  // occupancy), which is the right regime for the cascade — but it hides
  // GPU1. This series re-specializes on a reference-heavy deployment so the
  // full-resolution segmentation is the bottleneck the modes compete on.
  {
    const int n = 16;
    std::printf("\nSpecializing reference-heavy models (256x192, tor 0.7)...\n");
    auto ref_scene = video::jackson_profile();
    ref_scene.width = 256;
    ref_scene.height = 192;
    ref_scene.tor = 0.7;
    const std::int64_t ref_calib = 600;
    video::SceneSimulator ref_sim(ref_scene, 4321, ref_calib + frames_per_stream);
    std::vector<video::Frame> ref_calib_frames;
    for (std::int64_t i = 0; i < ref_calib; ++i) {
      ref_calib_frames.push_back(ref_sim.render(i));
    }
    detect::SpecializeConfig rsc;
    rsc.target = ref_scene.target;
    rsc.snm.epochs = 4;
    const auto ref_models = detect::specialize_stream(ref_calib_frames, rsc, 4321);
    std::vector<video::Frame> ref_window;
    ref_window.reserve(static_cast<std::size_t>(frames_per_stream));
    for (std::int64_t i = 0; i < frames_per_stream; ++i) {
      ref_window.push_back(ref_sim.render(ref_calib + i));
    }

    struct ModeRun {
      double fps = 0.0, p50 = 0.0, p99 = 0.0;
      std::map<std::pair<int, std::int64_t>, bool> pass;  ///< Frame verdicts.
      std::uint64_t batches = 0, fallbacks = 0, seam = 0;
    };
    const double conf = ref_models.reference->config().confidence_threshold;
    const auto run_mode = [&](core::RefMode mode) {
      core::FfsVaConfig cfg;
      cfg.ref_mode = mode;
      core::FfsVaInstance instance(cfg);
      instance.set_output_sink([](const core::OutputEvent&) {});
      for (int s = 0; s < n; ++s) {
        instance.add_stream(std::make_unique<ReplaySource>(&ref_window, s),
                            ref_models);
      }
      const auto stats = instance.run(/*online=*/false);
      const auto agg = stats.aggregate();
      ModeRun r;
      r.fps = stats.total_throughput_fps;
      r.p50 = agg.latency_ms.p50();
      r.p99 = agg.latency_ms.p99();
      for (const auto& ev : instance.outputs()) {
        r.pass[{ev.frame.stream_id, ev.frame.index}] =
            ev.result.count_target(ref_models.target, conf) >= 1;
      }
      r.batches = instance.metrics().counter("executor.ref_batches").value();
      r.fallbacks = instance.metrics().counter("ref.full_frame_fallbacks").value();
      r.seam = instance.metrics().counter("ref.seam_suppressed").value();
      return r;
    };
    // Frames are keyed (stream, index): 16-stream emission interleave is
    // scheduling-dependent, so agreement is computed over the union of
    // emitted frames — a frame one mode emitted and the other did not is a
    // disagreement, not a skip.
    const auto agreement = [](const ModeRun& oracle, const ModeRun& other) {
      std::size_t agree = 0, total = 0;
      for (const auto& [key, pass] : oracle.pass) {
        ++total;
        const auto it = other.pass.find(key);
        if (it != other.pass.end() && it->second == pass) ++agree;
      }
      for (const auto& [key, pass] : other.pass) {
        if (!oracle.pass.count(key)) ++total;
      }
      return total > 0 ? static_cast<double>(agree) / static_cast<double>(total)
                       : 1.0;
    };

    const struct {
      core::RefMode mode;
      const char* name;
    } kModes[] = {{core::RefMode::kSingle, "ref_single"},
                  {core::RefMode::kBatch, "ref_batch"},
                  {core::RefMode::kCropPack, "ref_crop_pack"}};
    // Single-run noise on a shared host is several percent — larger than
    // the single-vs-batch delta on a low-core machine — so the methodology
    // matches the telemetry-overhead block: one discarded warmup (page
    // cache, pool spin-up), then interleaved reps, best-of per mode.
    // Verdict maps are deterministic per mode, so agreement is computed
    // from the best runs.
    const int reps = 3;
    std::printf("\nreference-stage mode (%d streams, offline, 256x192, "
                "best of %d)\n", n, reps);
    std::printf("%-16s %12s %12s %12s\n", "mode", "total FPS", "p50 lat(ms)",
                "p99 lat(ms)");
    bench::print_rule();
    (void)run_mode(core::RefMode::kSingle);  // warmup, discarded
    ModeRun best[3];
    for (int rep = 0; rep < reps; ++rep) {
      for (int m = 0; m < 3; ++m) {
        ModeRun r = run_mode(kModes[m].mode);
        std::printf("%-16s %12.1f %12.1f %12.1f\n", kModes[m].name, r.fps,
                    r.p50, r.p99);
        if (r.fps > best[m].fps) best[m] = std::move(r);
      }
    }
    bench::print_rule();
    for (int m = 0; m < 3; ++m) {
      const ModeRun& r = best[m];
      const bool is_oracle = m == 0;
      const double agree = is_oracle ? 1.0 : agreement(best[0], r);
      std::printf("%-16s %12.1f %12.1f %12.1f agreement=%.4f\n", kModes[m].name,
                  r.fps, r.p50, r.p99, agree);
      char name[64];
      std::snprintf(name, sizeof(name), "%s%s/streams=%d", label.c_str(),
                    kModes[m].name, n);
      bench::JsonReport::Extras extras{{"oracle_agreement", agree}};
      if (!is_oracle) extras.emplace_back("ref_batches",
                                          static_cast<double>(r.batches));
      if (kModes[m].mode == core::RefMode::kCropPack) {
        extras.emplace_back("full_frame_fallbacks",
                            static_cast<double>(r.fallbacks));
        extras.emplace_back("seam_suppressed", static_cast<double>(r.seam));
      }
      report.add(name, r.fps, r.p50, r.p99, std::move(extras));
    }
  }

  // --- telemetry overhead: 16-stream offline, metrics off vs on -----------
  // The per-run noise of a 16-stream threaded run is several percent, so a
  // single off/on pair cannot resolve a <=2% budget. We alternate off/on
  // over three pairs and compare best-of-3 — interleaving cancels drift
  // (thermal, page cache, sibling load) and best-of suppresses outliers.
  // The measured "on" runs carry the live sampler at --metrics-interval-ms;
  // span tracing is a separate opt-in diagnostic and is exercised by one
  // extra unmeasured run only when --trace-out asks for a timeline.
  {
    const int n = 16;
    const int reps = 3;
    std::printf("\ntelemetry overhead (%d streams, offline, sampler %d ms, "
                "best of %d)\n", n, metrics_interval_ms, reps);
    std::printf("%-22s %12s %12s %12s\n", "variant", "total FPS", "p50 lat(ms)",
                "p99 lat(ms)");
    bench::print_rule();
    struct Best {
      double fps = 0.0, p50 = 0.0, p99 = 0.0;
    };
    Best best[2];  // [0] = metrics off, [1] = metrics on.
    const auto run_variant = [&](bool metrics_on) {
      core::FfsVaConfig cfg;
      cfg.metrics_interval_ms = std::max(1, metrics_interval_ms);
      core::FfsVaInstance instance(cfg);
      instance.set_output_sink([](const core::OutputEvent&) {});
      std::ostringstream discard;
      if (metrics_on) {
        if (!metrics_out.empty()) {
          instance.enable_metrics_export(metrics_out, label + "bench16");
        } else {
          instance.enable_metrics_export(&discard, label + "bench16");
        }
      }
      for (int s = 0; s < n; ++s) {
        instance.add_stream(std::make_unique<ReplaySource>(&window, s), models);
      }
      const auto stats = instance.run(/*online=*/false);
      const auto agg = stats.aggregate();
      Best& b = best[metrics_on ? 1 : 0];
      if (stats.total_throughput_fps > b.fps) {
        b = {stats.total_throughput_fps, agg.latency_ms.p50(),
             agg.latency_ms.p99()};
      }
      std::printf("%-22s %12.1f %12.1f %12.1f\n",
                  metrics_on ? "metrics_on" : "metrics_off",
                  stats.total_throughput_fps, agg.latency_ms.p50(),
                  agg.latency_ms.p99());
    };
    for (int rep = 0; rep < reps; ++rep) {
      run_variant(false);
      run_variant(true);
    }
    const double overhead_pct =
        best[0].fps > 0.0
            ? (best[0].fps - best[1].fps) / best[0].fps * 100.0
            : 0.0;
    std::printf("%-22s %12.2f%%\n", "overhead (best-of)", overhead_pct);
    for (const bool metrics_on : {false, true}) {
      char name[64];
      std::snprintf(name, sizeof(name), "%soffline_metrics_%s/streams=%d",
                    label.c_str(), metrics_on ? "on" : "off", n);
      bench::JsonReport::Extras extras;
      if (metrics_on) extras.emplace_back("overhead_pct", overhead_pct);
      const Best& b = best[metrics_on ? 1 : 0];
      report.add(name, b.fps, b.p50, b.p99, std::move(extras));
    }
    if (!trace_out.empty()) {
      // One extra run with spans armed, outside the measured pairs.
      core::FfsVaConfig cfg;
      cfg.metrics_interval_ms = std::max(1, metrics_interval_ms);
      core::FfsVaInstance instance(cfg);
      instance.set_output_sink([](const core::OutputEvent&) {});
      instance.enable_tracing();
      for (int s = 0; s < n; ++s) {
        instance.add_stream(std::make_unique<ReplaySource>(&window, s), models);
      }
      instance.run(/*online=*/false);
      if (instance.export_trace(trace_out)) {
        std::printf("trace written to %s\n", trace_out.c_str());
      }
    }
  }

  // --- online mode: drop rate vs stream count -----------------------------
  // Each online run paces every stream at 30 FPS over a shorter window; the
  // clean series measures overload (ingest drops), the fault series adds
  // survivable source faults and reports the supervision counters.
  const std::int64_t of = std::min(online_frames, frames_per_stream);
  const auto online_window =
      std::vector<video::Frame>(window.begin(), window.begin() + of);

  for (const bool with_faults : {false, true}) {
    std::printf("\nonline %s(30 FPS pacing, %lld frames/stream)\n",
                with_faults ? "with injected faults " : "",
                static_cast<long long>(of));
    std::printf("%-10s %12s %12s %12s %12s\n", "streams", "total FPS",
                "drop rate", "p50 lat(ms)", "p99 lat(ms)");
    bench::print_rule();
    for (const int n : stream_counts) {
      core::FfsVaConfig cfg;
      cfg.stall_timeout_ms = 250;  // supervision armed, as deployed
      cfg.source_max_retries = 6;
      core::FfsVaInstance instance(cfg);
      instance.set_output_sink([](const core::OutputEvent&) {});
      for (int s = 0; s < n; ++s) {
        auto src = std::make_unique<ReplaySource>(&online_window, s);
        if (with_faults) {
          video::FaultPlan plan;
          plan.p_transient = 0.05;
          plan.p_truncated = 0.05;
          plan.p_latency_spike = 0.1;
          instance.add_stream(
              std::make_unique<video::FaultInjectingSource>(
                  std::move(src), plan, 0x5eedu + static_cast<unsigned>(s)),
              models);
        } else {
          instance.add_stream(std::move(src), models);
        }
      }
      const auto stats = instance.run(/*online=*/true);
      const auto agg = stats.aggregate();
      const double ingress =
          static_cast<double>(agg.prefetch.passed + agg.dropped_at_ingest);
      const double drop_rate =
          ingress > 0.0 ? static_cast<double>(agg.dropped_at_ingest) / ingress : 0.0;
      std::printf("%-10d %12.1f %12.4f %12.1f %12.1f\n", n,
                  stats.total_throughput_fps, drop_rate, agg.latency_ms.p50(),
                  agg.latency_ms.p99());
      if (with_faults) {
        std::printf("%10s decode_errors=%llu retries=%llu degraded=%llu\n", "",
                    static_cast<unsigned long long>(stats.health.decode_errors),
                    static_cast<unsigned long long>(stats.health.retries),
                    static_cast<unsigned long long>(stats.health.degraded_frames));
      }
      char name[64];
      std::snprintf(name, sizeof(name), "%sonline%s/streams=%d", label.c_str(),
                    with_faults ? "_faults" : "", n);
      bench::JsonReport::Extras extras{{"drop_rate", drop_rate}};
      if (with_faults) {
        extras.emplace_back("decode_errors",
                            static_cast<double>(stats.health.decode_errors));
        extras.emplace_back("retries", static_cast<double>(stats.health.retries));
        extras.emplace_back("degraded_frames",
                            static_cast<double>(stats.health.degraded_frames));
      }
      report.add(name, stats.total_throughput_fps, agg.latency_ms.p50(),
                 agg.latency_ms.p99(), std::move(extras));
    }
  }

  // --- model-fault recovery: wedged model calls vs clean ------------------
  // Escalation end-to-end (DESIGN.md Section 14): the same 16-stream
  // offline workload, run clean and with deterministic kStall wedges seeded
  // at every stage, both with the per-call watchdog armed so the engine is
  // identical and only the faults differ. This is the last series in the
  // run, so the cheap filters can be relaxed in place: SDD passes every
  // frame, SNM's t_pre drops to 0 and T-YOLO forwards unconditionally
  // (number_of_objects = 0), which keeps the deep stages under real load so
  // wedges at SNM / T-YOLO / reference actually land on traffic.
  if (model_faults != "off") {
    const int n = 16;
    const int reps = 2;
    models.sdd->set_delta(-1.0);
    models.snm->set_thresholds(0.0, 0.0);
    // Wedges are rare events amortized over a long run, so the series
    // replays the scaling window three times per stream: the wedge burst
    // (12 stalls, each ~model_call_timeout_ms to cancel) is measured
    // against a deployment-scale window, not a 2-second sprint.
    std::vector<video::Frame> rec_window;
    rec_window.reserve(window.size() * 3);
    for (int pass = 0; pass < 3; ++pass) {
      rec_window.insert(rec_window.end(), window.begin(), window.end());
    }

    struct RecoveryRun {
      double fps = 0.0, p50 = 0.0, p99 = 0.0;
      std::uint64_t cancels = 0, stage_restarts = 0, poisoned = 0, degraded = 0;
      double recovery_p99_ms = 0.0;
      int wedges = 0;
      std::int64_t cancelled_stalls = 0;
    };
    const auto run_recovery = [&](bool wedged) {
      std::unique_ptr<detect::FaultHook> hook;
      if (wedged) {
        // Three sparse periodic wedges per stage. duration_ms is only the
        // fallback cap for a run without escalation; with the watchdog
        // armed each stall is cancelled at ~model_call_timeout_ms.
        hook = std::make_unique<detect::FaultHook>(
            std::vector<detect::ModelFaultSpec>{
                {detect::FaultStage::kSdd, detect::ModelFaultSpec::Kind::kStall,
                 /*offset=*/100, /*period=*/700, /*max_triggers=*/3,
                 /*duration_ms=*/10'000},
                {detect::FaultStage::kSnm, detect::ModelFaultSpec::Kind::kStall,
                 5, 40, 3, 10'000},
                {detect::FaultStage::kTyolo,
                 detect::ModelFaultSpec::Kind::kStall, 9, 150, 3, 10'000},
                {detect::FaultStage::kRef, detect::ModelFaultSpec::Kind::kStall,
                 7, 120, 3, 10'000},
            });
        hook->install();
      }
      core::FfsVaConfig cfg;
      cfg.model_call_timeout_ms = 150;
      cfg.number_of_objects = 0;
      core::FfsVaInstance instance(cfg);
      instance.set_output_sink([](const core::OutputEvent&) {});
      for (int s = 0; s < n; ++s) {
        instance.add_stream(std::make_unique<ReplaySource>(&rec_window, s),
                            models);
      }
      const auto stats = instance.run(/*online=*/false);
      if (hook) detect::FaultHook::uninstall();
      const auto agg = stats.aggregate();
      RecoveryRun r;
      r.fps = stats.total_throughput_fps;
      r.p50 = agg.latency_ms.p50();
      r.p99 = agg.latency_ms.p99();
      r.cancels = stats.health.cancels;
      r.stage_restarts = stats.health.stage_restarts;
      r.poisoned = stats.health.poisoned_frames;
      r.degraded = stats.health.degraded_frames;
      r.recovery_p99_ms =
          instance.metrics().histogram("latency.recovery_ms").snapshot().quantile(
              0.99);
      if (hook) {
        for (std::size_t i = 0; i < 4; ++i) r.wedges += hook->triggered(i);
        r.cancelled_stalls = hook->cancelled_stalls();
      }
      return r;
    };

    // Interleaved reps, best-of per variant (the process is warm from the
    // preceding series, so no separate warmup run).
    std::printf("\nmodel-fault recovery (%d streams, offline, full-cascade "
                "traffic, watchdog 150 ms, best of %d)\n", n, reps);
    std::printf("%-10s %12s %12s %12s %8s %8s %8s\n", "variant", "total FPS",
                "p50 lat(ms)", "p99 lat(ms)", "cancels", "restarts", "poisoned");
    bench::print_rule();
    RecoveryRun best[2];
    for (int rep = 0; rep < reps; ++rep) {
      for (int v = 0; v < 2; ++v) {
        const RecoveryRun r = run_recovery(v == 1);
        if (r.fps > best[v].fps) best[v] = r;
      }
    }
    for (int v = 0; v < 2; ++v) {
      std::printf("%-10s %12.1f %12.1f %12.1f %8llu %8llu %8llu\n",
                  v == 1 ? "wedged" : "clean", best[v].fps, best[v].p50,
                  best[v].p99, static_cast<unsigned long long>(best[v].cancels),
                  static_cast<unsigned long long>(best[v].stage_restarts),
                  static_cast<unsigned long long>(best[v].poisoned));
    }
    const double ratio = best[0].fps > 0.0 ? best[1].fps / best[0].fps : 0.0;
    std::printf("%10s wedges=%d cancelled_stalls=%lld recovery_p99=%.1fms "
                "throughput ratio %.2fx (budget >=0.80x)\n", "",
                best[1].wedges,
                static_cast<long long>(best[1].cancelled_stalls),
                best[1].recovery_p99_ms, ratio);

    char cname[64], wname[64];
    std::snprintf(cname, sizeof(cname), "%soffline_model_faults_off/streams=%d",
                  label.c_str(), n);
    std::snprintf(wname, sizeof(wname), "%soffline_model_faults_on/streams=%d",
                  label.c_str(), n);
    report.add(cname, best[0].fps, best[0].p50, best[0].p99);
    bench::JsonReport::Extras extras{
        {"fps_vs_clean", ratio},
        {"wedges_fired", static_cast<double>(best[1].wedges)},
        {"cancelled_stalls", static_cast<double>(best[1].cancelled_stalls)},
        {"cancels", static_cast<double>(best[1].cancels)},
        {"stage_restarts", static_cast<double>(best[1].stage_restarts)},
        {"poisoned_frames", static_cast<double>(best[1].poisoned)},
        {"degraded_frames", static_cast<double>(best[1].degraded)},
        {"recovery_p99_ms", best[1].recovery_p99_ms},
    };
    report.add(wname, best[1].fps, best[1].p50, best[1].p99, std::move(extras));
  }

  // --- cluster scale-out: 1-node vs 2-node distributed serving -------------
  // The real multi-process path (DESIGN.md §15) measured end-to-end:
  // in-process NodeServers (each a full serve-mode engine behind the socket
  // protocol) driven by the ClusterScheduler over loopback TCP. Aggregate
  // FPS counts frames ingested across all nodes over the scheduler's wall
  // clock — protocol, snapshot polling, and hand-off costs included. The
  // 2-node row carries a forced live migration so its hand-off latency p99
  // is a measured number, and a tight-vs-off snapshot-interval pair bounds
  // the snapshot-exchange overhead (budget <= 2%).
  if (cluster) {
    const auto run_cluster = [&](int nodes, std::uint64_t cframes,
                                 int snapshot_ms, double migrate_at) {
      std::vector<std::unique_ptr<node::NodeServer>> servers;
      std::vector<std::thread> loops;
      std::vector<net::Endpoint> eps;
      for (int i = 0; i < nodes; ++i) {
        node::NodeOptions opts;
        opts.node_id = static_cast<std::uint32_t>(i);
        servers.push_back(std::make_unique<node::NodeServer>(std::move(opts)));
        if (!servers.back()->start()) {
          std::fprintf(stderr, "cluster bench: cannot start node %d\n", i);
          std::exit(1);
        }
        loops.emplace_back([srv = servers.back().get()] { srv->serve(); });
        eps.push_back(net::Endpoint::tcp("127.0.0.1", servers.back()->port()));
      }
      const auto specs = node::make_specs(/*count=*/8, cframes, /*calib=*/12,
                                          /*w=*/96, /*h=*/72);
      node::SchedOptions sopts;
      sopts.snapshot_interval_ms = snapshot_ms;
      sopts.force_migration_at_sec = migrate_at;
      sopts.deadline_sec = 600.0;
      node::ClusterScheduler sched(eps, core::FfsVaConfig{}, sopts);
      node::ClusterReport rep = sched.run(specs);
      for (auto& t : loops) t.join();
      std::uint64_t ingested = 0;
      for (const auto& s : rep.streams) ingested += s.ingested;
      const double fps = rep.wall_sec > 0.0
                             ? static_cast<double>(ingested) / rep.wall_sec
                             : 0.0;
      return std::make_pair(std::move(rep), fps);
    };

    std::printf("\ncluster scale-out (8 streams, offline, loopback TCP)\n");
    std::printf("%-24s %12s %10s %16s\n", "variant", "agg FPS", "handoffs",
                "handoff p99(ms)");
    bench::print_rule();
    const auto [rep1, fps1] = run_cluster(1, 1200, 100, -1.0);
    std::printf("%-24s %12.1f %10d %16s\n", "nodes=1", fps1, rep1.handoffs,
                "-");
    const auto [rep2, fps2] = run_cluster(2, 1200, 100, 1.0);
    std::printf("%-24s %12.1f %10d %16.1f\n", "nodes=2 (live handoff)", fps2,
                rep2.handoffs, rep2.handoff_p99_ms());
    if (!rep1.ok || !rep2.ok || rep2.handoffs < 1) {
      std::fprintf(stderr, "cluster bench: run incomplete (ok=%d/%d "
                   "handoffs=%d)\n", rep1.ok, rep2.ok, rep2.handoffs);
      return 1;
    }
    report.add(label + "cluster/nodes=1", fps1, 0.0, 0.0,
               {{"streams", 8.0},
                {"snapshot_polls", static_cast<double>(rep1.snapshot_frames)}});
    report.add(label + "cluster/nodes=2", fps2, 0.0, 0.0,
               {{"streams", 8.0},
                {"handoffs", static_cast<double>(rep2.handoffs)},
                {"handoff_p99_ms", rep2.handoff_p99_ms()},
                {"speedup_vs_1node", fps1 > 0.0 ? fps2 / fps1 : 0.0},
                {"snapshot_polls", static_cast<double>(rep2.snapshot_frames)}});

    // Snapshot-exchange overhead: the same 2-node fleet with the poller at
    // 20 ms vs effectively off, interleaved best-of pairs (same noise logic
    // as the telemetry-overhead block).
    double best_tight = 0.0, best_off = 0.0;
    for (int rep = 0; rep < 2; ++rep) {
      best_off = std::max(best_off, run_cluster(2, 600, 1 << 20, -1.0).second);
      best_tight = std::max(best_tight, run_cluster(2, 600, 20, -1.0).second);
    }
    const double snap_overhead_pct =
        best_off > 0.0 ? (best_off - best_tight) / best_off * 100.0 : 0.0;
    std::printf("%-24s %12.1f vs %8.1f -> overhead %.2f%% (budget <= 2%%)\n",
                "snapshot 20ms vs off", best_tight, best_off,
                snap_overhead_pct);
    report.add(label + "cluster/snapshot_overhead", best_tight, 0.0, 0.0,
               {{"baseline_fps", best_off},
                {"overhead_pct", snap_overhead_pct}});
  }
  return 0;
}
