file(REMOVE_RECURSE
  "CMakeFiles/ffsva_video.dir/clips.cpp.o"
  "CMakeFiles/ffsva_video.dir/clips.cpp.o.d"
  "CMakeFiles/ffsva_video.dir/codec.cpp.o"
  "CMakeFiles/ffsva_video.dir/codec.cpp.o.d"
  "CMakeFiles/ffsva_video.dir/profiles.cpp.o"
  "CMakeFiles/ffsva_video.dir/profiles.cpp.o.d"
  "CMakeFiles/ffsva_video.dir/scene.cpp.o"
  "CMakeFiles/ffsva_video.dir/scene.cpp.o.d"
  "CMakeFiles/ffsva_video.dir/tor_schedule.cpp.o"
  "CMakeFiles/ffsva_video.dir/tor_schedule.cpp.o.d"
  "libffsva_video.a"
  "libffsva_video.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ffsva_video.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
