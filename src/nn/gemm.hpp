// im2col + GEMM convolution path.
//
// The forward pass of Conv2d can be computed either directly (simple,
// gradient-checked — see layers.cpp) or by lowering to a matrix multiply:
// unfold every receptive field into a column (im2col), multiply by the
// [out_ch x in_ch*k*k] filter matrix, add bias. The GEMM form is how the
// GPU frameworks the paper builds on execute convolutions, and it is the
// faster CPU path for inference; the pipeline's SNM uses it for batched
// prediction.
//
// gemm() is a cache-blocked kernel in the BLIS mold: the operands are
// copied into packed panels (A in MR-row slabs, B in NR-column slabs) so
// the register micro-kernel streams contiguous memory, the K dimension is
// blocked at KC so a B panel stays cache-resident, and row panels are
// fanned out across runtime::parallel_for when the problem is large
// enough to pay for the dispatch. Pruned models keep their fast path,
// hoisted from the seed's per-multiply branch to pack time: k-steps whose
// whole MR-row slice is zero (see nn/compress.hpp) are compacted out of
// the packed A panel, and panels with any such step run a branch-free
// indexed micro-kernel over the surviving steps — dense panels pay
// nothing. Results are bitwise identical across thread counts (each
// output row is accumulated in a fixed k-order by exactly one worker).
#pragma once

#include <cstdint>
#include <vector>

#include "nn/tensor.hpp"

namespace ffsva::nn {

/// Reusable packing / staging buffers for gemm() and conv2d_im2col_into().
/// Sized on demand; steady-state reuse performs no heap allocation once
/// the shapes seen have stabilized.
struct GemmScratch {
  std::vector<float> columns;      ///< im2col staging (conv path).
  std::vector<float> a_pack;       ///< packed (zero-step-compacted) A panels.
  std::vector<std::int32_t> a_idx; ///< surviving k-step indices per A panel.
  std::vector<float> b_pack;       ///< packed B column panels.
  /// Per-sample sub-scratches for the batched conv path, which fans the
  /// independent samples of a batch out across the compute pool (each lane
  /// owns its own im2col/packing buffers).
  std::vector<GemmScratch> lanes;
};

/// Unfold sample `n` of x into columns: out is [in_ch*k*k, oh*ow],
/// row-major. Zero padding outside the image.
void im2col(const Tensor& x, int n, int kernel, int stride, int pad,
            int out_h, int out_w, std::vector<float>& columns);

/// Row-major C[MxN] = A[MxK] * B[KxN] (C overwritten). Blocked, packed,
/// multi-threaded; ws supplies the packing buffers.
void gemm(const float* a, const float* b, float* c, int m, int k, int n,
          GemmScratch& ws);

/// Convenience overload using a thread-local scratch.
void gemm(const float* a, const float* b, float* c, int m, int k, int n);

/// The seed scalar kernel (ikj loops, per-element zero skip). Kept as the
/// reference implementation for cross-checking and the before/after
/// baseline in bench_gemm_kernels.
void gemm_naive(const float* a, const float* b, float* c, int m, int k, int n);

/// Full convolution via im2col+GEMM into a caller-owned output tensor.
/// weight: [out_ch, in_ch, k, k]; bias: [out_ch,1,1,1]. y is reshaped to
/// the output geometry; with a warm scratch the call does not allocate.
/// Numerically identical (up to FP reassociation) to Conv2d::forward.
void conv2d_im2col_into(const Tensor& x, const Tensor& weight, const Tensor& bias,
                        int stride, int pad, Tensor& y, GemmScratch& ws);

/// Allocating wrapper around conv2d_im2col_into (thread-local scratch).
Tensor conv2d_im2col(const Tensor& x, const Tensor& weight, const Tensor& bias,
                     int stride, int pad);

}  // namespace ffsva::nn
