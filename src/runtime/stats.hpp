// Latency / throughput statistics used by both the threaded engine and the
// discrete-event simulator.
//
// Histogram uses logarithmic bucketing (HdrHistogram-style, 32 sub-buckets
// per octave) so that recording is O(1), memory is bounded, and percentile
// error is < ~3% across nanoseconds-to-minutes ranges — good enough for the
// p50/p90/p99 tables in EXPERIMENTS.md.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace ffsva::runtime {

/// Running scalar summary: count / mean / min / max / variance (Welford).
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double variance() const;
  double stddev() const;
  double sum() const { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Log-bucketed histogram over non-negative values (typically microseconds).
class Histogram {
 public:
  Histogram();

  void add(double value);
  void merge(const Histogram& other);

  std::uint64_t count() const { return stats_.count(); }
  double mean() const { return stats_.mean(); }
  double min() const { return stats_.min(); }
  double max() const { return stats_.max(); }

  /// Value at quantile q in [0, 1]; returns the representative value of the
  /// bucket containing the q-th sample.
  double quantile(double q) const;

  double p50() const { return quantile(0.50); }
  double p90() const { return quantile(0.90); }
  double p99() const { return quantile(0.99); }

  /// One-line summary, e.g. "n=1000 mean=3.2 p50=3.0 p99=9.7 max=12.1".
  std::string summary() const;

  static constexpr int kSubBucketsLog2 = 5;  // 32 sub-buckets per octave
  static constexpr int kSubBuckets = 1 << kSubBucketsLog2;
  static constexpr std::size_t kBuckets = 64 * kSubBuckets;

  /// The bucketing scheme, exposed so other recorders (the telemetry
  /// registry's lock-free AtomicHistogram) can share it and stay mergeable
  /// with this class bucket-for-bucket.
  static std::size_t bucket_index(double value);
  static double bucket_value(std::size_t index);

 private:
  std::vector<std::uint64_t> buckets_;
  RunningStats stats_;
};

/// Per-stage pipeline counters: frames in, frames passed, frames filtered.
struct StageCounters {
  std::uint64_t in = 0;
  std::uint64_t passed = 0;

  std::uint64_t filtered() const { return in - passed; }
  double pass_rate() const {
    return in ? static_cast<double>(passed) / static_cast<double>(in) : 0.0;
  }
};

}  // namespace ffsva::runtime
