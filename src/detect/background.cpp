#include "detect/background.hpp"

#include <algorithm>

namespace ffsva::detect {

void BackgroundEstimator::add(const image::Image& frame) {
  ++offers_;
  if (static_cast<int>(samples_.size()) < max_samples_) {
    samples_.push_back(frame);
    return;
  }
  // Replace with stride so samples stay spread over the whole window:
  // keep roughly every (offers/max_samples)-th frame.
  const std::size_t stride = std::max<std::size_t>(1, offers_ / samples_.size());
  if (offers_ % stride == 0) {
    samples_[(offers_ / stride) % samples_.size()] = frame;
  }
}

image::Image BackgroundEstimator::estimate() const {
  if (samples_.empty()) return {};
  const auto& first = samples_.front();
  image::Image out(first.width(), first.height(), first.channels());
  const std::size_t n = first.size_bytes();
  std::vector<std::uint8_t> vals(samples_.size());
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t s = 0; s < samples_.size(); ++s) vals[s] = samples_[s].data()[i];
    auto mid = vals.begin() + static_cast<std::ptrdiff_t>(vals.size() / 2);
    std::nth_element(vals.begin(), mid, vals.end());
    out.data()[i] = *mid;
  }
  return out;
}

}  // namespace ffsva::detect
