// Frame traces: per-frame measurements of every filter in the cascade.
//
// The sensitivity experiments (Figures 7-8, Table 2) sweep *thresholds* —
// FilterDegree, NumberofObjects, delta_diff — over a fixed set of frames.
// Recording the raw per-frame quantities once (SDD distance, SNM score,
// T-YOLO count, reference count) makes every sweep point a pure threshold
// evaluation, so a 5000-frame sweep costs one pass of real inference
// instead of one per sweep point. The recorded quantities are exactly what
// the real pipeline computes; apply_cascade() reproduces its gating logic.
#pragma once

#include <cstdint>
#include <vector>

#include "detect/specialize.hpp"
#include "video/scene.hpp"

namespace ffsva::core {

struct FrameRecord {
  std::int64_t index = 0;
  bool gt_target = false;      ///< Ground truth: any target visible.
  int gt_count = 0;            ///< Ground truth target count.
  double sdd_distance = 0.0;   ///< SDD distance to the reference background.
  double snm_score = 0.0;      ///< SNM predicted probability c.
  int tyolo_count = 0;         ///< T-YOLO target count.
  int ref_count = 0;           ///< Reference-model target count.
  bool ref_positive = false;   ///< ref_count >= 1 (the accuracy oracle).
};

/// Thresholds actually applied by the cascade at one operating point.
struct CascadeThresholds {
  double sdd_delta = 0.0;
  double t_pre = 0.0;
  int number_of_objects = 1;
};

enum class FilteredAt : std::uint8_t { kNone = 0, kSdd = 1, kSnm = 2, kTyolo = 3 };

/// Which stage (if any) filters this frame at the given thresholds.
inline FilteredAt apply_cascade(const FrameRecord& r, const CascadeThresholds& t) {
  if (!(r.sdd_distance > t.sdd_delta)) return FilteredAt::kSdd;
  if (!(r.snm_score >= t.t_pre)) return FilteredAt::kSnm;
  if (r.tyolo_count < t.number_of_objects) return FilteredAt::kTyolo;
  return FilteredAt::kNone;
}

/// Thresholds the given models are currently configured with.
CascadeThresholds thresholds_of(const detect::StreamModels& models,
                                int number_of_objects);

/// Run every filter on frames [begin, end) of the simulator.
std::vector<FrameRecord> record_trace(const video::SceneSimulator& sim,
                                      const detect::StreamModels& models,
                                      std::int64_t begin, std::int64_t end);

/// Same, over already-rendered frames.
std::vector<FrameRecord> record_trace(const std::vector<video::Frame>& frames,
                                      const detect::StreamModels& models);

/// Aggregate cascade behaviour at one operating point.
struct TraceStats {
  std::int64_t total = 0;
  std::int64_t sdd_pass = 0;    ///< Frames surviving SDD.
  std::int64_t snm_pass = 0;    ///< Frames surviving SDD+SNM.
  std::int64_t output = 0;      ///< Frames surviving the whole cascade.
  std::int64_t ref_positive = 0;
  std::int64_t false_negative = 0;  ///< ref-positive but filtered.
  double error_rate = 0.0;          ///< false_negative / total (Sec. 3.3).
  double output_rate = 0.0;         ///< output / total.
};

TraceStats evaluate_trace(const std::vector<FrameRecord>& records,
                          const CascadeThresholds& thresholds);

/// Per-frame false-negative mask at one operating point (for run analysis).
std::vector<bool> false_negative_mask(const std::vector<FrameRecord>& records,
                                      const CascadeThresholds& thresholds);

/// Per-frame pass mask.
std::vector<bool> pass_mask(const std::vector<FrameRecord>& records,
                            const CascadeThresholds& thresholds);

}  // namespace ffsva::core
