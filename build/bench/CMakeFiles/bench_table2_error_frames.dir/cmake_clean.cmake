file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_error_frames.dir/bench_table2_error_frames.cpp.o"
  "CMakeFiles/bench_table2_error_frames.dir/bench_table2_error_frames.cpp.o.d"
  "bench_table2_error_frames"
  "bench_table2_error_frames.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_error_frames.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
