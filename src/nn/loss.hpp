// Losses. SNM is a binary classifier ("a predicted probability c of the
// target object appearing in the frame", Section 2.1), trained with
// binary cross-entropy on logits for numerical stability.
#pragma once

#include "nn/tensor.hpp"

namespace ffsva::nn {

/// Numerically stable BCE-with-logits.
/// `logits`: [N,1,1,1]; `targets`: 0/1 per sample.
/// Returns mean loss; fills `grad` (same shape as logits) with
/// dLoss/dLogit, already divided by N.
double bce_with_logits(const Tensor& logits, const std::vector<float>& targets,
                       Tensor& grad);

/// Softmax cross-entropy over C classes. `logits`: [N,C,1,1];
/// `labels`: class index per sample. Mean loss; `grad` = dLoss/dLogits / N.
double softmax_cross_entropy(const Tensor& logits, const std::vector<int>& labels,
                             Tensor& grad);

/// Sigmoid of a scalar logit (the inference-side counterpart of
/// bce_with_logits).
double sigmoid(double x);

}  // namespace ffsva::nn
