#include "video/source.hpp"

#include <gtest/gtest.h>

#include "video/profiles.hpp"

namespace ffsva::video {
namespace {

std::shared_ptr<SceneSimulator> small_sim(int frames) {
  SceneConfig cfg = jackson_profile();
  cfg.width = 96;
  cfg.height = 72;
  cfg.tor = 0.3;
  return std::make_shared<SceneSimulator>(cfg, 9, frames);
}

TEST(LiveSource, YieldsAllFramesInOrder) {
  auto sim = small_sim(25);
  LiveSource src(sim, /*stream_id=*/3);
  EXPECT_EQ(src.total_frames(), 25);
  for (int i = 0; i < 25; ++i) {
    const auto f = src.next();
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(f->index, i);
    EXPECT_EQ(f->stream_id, 3);
  }
  EXPECT_FALSE(src.next().has_value());
}

TEST(LiveSource, MatchesDirectRendering) {
  auto sim = small_sim(10);
  LiveSource src(sim, 0);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(src.next()->image, sim->render(i).image);
  }
}

TEST(StoredSource, DecodesWhatWasEncoded) {
  auto sim = small_sim(20);
  std::vector<Frame> frames;
  for (int i = 0; i < 20; ++i) frames.push_back(sim->render(i));
  auto video = std::make_shared<StoredVideo>(StoredVideo::encode(frames, 8));
  StoredSource src(video, 7);
  for (int i = 0; i < 20; ++i) {
    const auto f = src.next();
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(f->image, frames[static_cast<std::size_t>(i)].image);
    EXPECT_EQ(f->stream_id, 7);
  }
  EXPECT_FALSE(src.next().has_value());
  EXPECT_EQ(src.total_frames(), 20);
}

TEST(Sources, MultipleLiveSourcesShareOneSimulator) {
  auto sim = small_sim(5);
  LiveSource a(sim, 0), b(sim, 1);
  // Same camera content, different stream ids.
  const auto fa = a.next();
  const auto fb = b.next();
  EXPECT_EQ(fa->image, fb->image);
  EXPECT_NE(fa->stream_id, fb->stream_id);
}

}  // namespace
}  // namespace ffsva::video
